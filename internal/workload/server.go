package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/sim"
)

// serverProfile models the Phoronix server tests (§5.6). Most are
// closed-loop: a fixed set of client-driven handlers issue the next
// request as soon as the previous one completes, each request being some
// compute plus an optional mid-request wait (disk, fsync). Wall time is
// then work-limited, so placement and frequency effects show directly —
// the leveldb/redis/perl pattern. Saturating tests (apache-siege at high
// concurrency) use an open-loop queue instead: arrivals outpace the pool
// and queueing dominates.
type serverProfile struct {
	// Handlers is the worker pool size.
	Handlers int
	// Requests is the total request count at paper scale.
	Requests int
	// Service is the per-request compute; Pause an optional mid-request
	// wait (I/O, fsync).
	Service sim.Duration
	CV      float64
	Pause   sim.Duration
	PauseCV float64
	// OpenLoop feeds requests through a queue at ArrivalFactor × pool
	// capacity instead of client-driven closed loops.
	OpenLoop      bool
	ArrivalFactor float64
	// Class labels the request class for SLO accounting ("web", "kv",
	// "script"); SLO is the per-request service-latency target. Requests
	// completing within SLO count toward the run's attainment customs
	// (slo_ok, slo_pct) and the "slo.<class>.*" counters.
	Class string
	SLO   sim.Duration
}

func (p serverProfile) install(m *cpu.Machine, scale float64) {
	reqs := scaleCount(p.Requests, scale, 50)
	svc := jitterCycles(m, p.Service, p.CV)
	perHandler := reqs / p.Handlers
	if perHandler < 1 {
		perHandler = 1
	}
	acc := &sloAccum{class: p.class(), slo: p.SLO}

	if p.OpenLoop {
		p.installOpenLoop(m, svc, perHandler, acc)
		acc.finishOn(m, "server-main")
		return
	}

	// Closed loop: each handler serves its share back to back.
	mkHandler := func() proc.Behavior {
		left := perHandler
		state := 0
		reqStart := sim.Time(-1)
		return func(t *proc.Task, r *sim.Rand) proc.Action {
			switch state {
			case 0:
				// Reaching state 0 again means the previous request's
				// service compute (if any) just finished.
				if reqStart >= 0 {
					acc.record(t.Now - reqStart)
					reqStart = -1
				}
				if left == 0 {
					return proc.Exit{}
				}
				left--
				reqStart = t.Now
				if p.Pause > 0 {
					state = 1
				}
				return proc.Compute{Cycles: svc(r)}
			default:
				acc.record(t.Now - reqStart)
				reqStart = -1
				state = 0
				return proc.Sleep{D: r.LogNormalDur(p.Pause, maxf(p.PauseCV, 0.3))}
			}
		}
	}
	var actions []proc.Action
	for i := 0; i < p.Handlers; i++ {
		actions = append(actions, proc.Fork{Name: fmt.Sprintf("handler-%d", i), Behavior: mkHandler()})
	}
	actions = append(actions, proc.WaitChildren{})
	m.Spawn("server-main", proc.Script(actions...))
	acc.finishOn(m, "server-main")
}

// class returns the profile's request class, defaulting to "web".
func (p serverProfile) class() string {
	if p.Class == "" {
		return "web"
	}
	return p.Class
}

// installOpenLoop builds the queue-fed saturated shape.
func (p serverProfile) installOpenLoop(m *cpu.Machine, svc func(*sim.Rand) int64, perHandler int, acc *sloAccum) {
	queue := proc.NewChan("requests", 100_000)
	total := perHandler * p.Handlers

	mkHandler := func() proc.Behavior {
		left := perHandler
		state := 0
		reqStart := sim.Time(-1)
		return func(t *proc.Task, r *sim.Rand) proc.Action {
			switch state {
			case 0:
				// Back at state 0: the previous request's compute is done.
				if reqStart >= 0 {
					acc.record(t.Now - reqStart)
					reqStart = -1
				}
				if left == 0 {
					return proc.Exit{}
				}
				left--
				state = 1
				return proc.Recv{Ch: queue}
			default:
				reqStart = t.Now
				state = 0
				return proc.Compute{Cycles: svc(r)}
			}
		}
	}

	// Several feeder tasks model the many client connections of a siege
	// run; a single feeder would serialise arrivals behind its own
	// wakeups and become the benchmark.
	feeders := p.Handlers / 12
	if feeders < 1 {
		feeders = 1
	}
	meanSvc := float64(p.Service + p.Pause)
	interarrival := sim.Duration(meanSvc / float64(p.Handlers) / maxf(p.ArrivalFactor, 0.05))
	// Round up so the feeders always send at least what the pool will
	// consume; surplus messages are simply left in the queue.
	perFeeder := (total + feeders - 1) / feeders
	mkFeeder := func() proc.Behavior {
		sent := 0
		sleeping := false
		return func(t *proc.Task, r *sim.Rand) proc.Action {
			if sent >= perFeeder {
				return proc.Exit{}
			}
			if !sleeping {
				sleeping = true
				sent++
				return proc.Send{Ch: queue}
			}
			sleeping = false
			return proc.Sleep{D: r.Exp(interarrival * sim.Duration(feeders))}
		}
	}

	var actions []proc.Action
	for i := 0; i < p.Handlers; i++ {
		actions = append(actions, proc.Fork{Name: fmt.Sprintf("handler-%d", i), Behavior: mkHandler()})
	}
	for i := 0; i < feeders; i++ {
		actions = append(actions, proc.Fork{Name: fmt.Sprintf("client-%d", i), Behavior: mkFeeder()})
	}
	actions = append(actions, proc.WaitChildren{})
	m.Spawn("server-main", proc.Script(actions...))
}

// serverTests models the §5.6 server results on the 2-socket 6130:
// apache-siege degrades under Nest at high concurrency, nginx/node/php
// hold parity, leveldb (+25%), redis (+7%) and perl (+16%) gain from warm
// cores, rocksdb random-read loses a few percent.
var serverTests = []struct {
	name string
	secs float64
	prof serverProfile
}{
	// SLO targets are ~4x the mean service time: generous enough that an
	// unloaded warm core always meets them, tight enough that cold
	// placements, slow ramps and queueing show up as attainment loss.
	{"apache-siege-250", 15, serverProfile{Handlers: 96, Requests: 60000, Service: 900 * sim.Microsecond, CV: 0.6, OpenLoop: true, ArrivalFactor: 1.3, Class: "web", SLO: 4 * msec}},
	{"apache-siege-100", 15, serverProfile{Handlers: 64, Requests: 40000, Service: 900 * sim.Microsecond, CV: 0.6, OpenLoop: true, ArrivalFactor: 0.9, Class: "web", SLO: 4 * msec}},
	{"nginx-200", 15, serverProfile{Handlers: 32, Requests: 60000, Service: 500 * sim.Microsecond, CV: 0.4, Pause: 300 * sim.Microsecond, PauseCV: 0.5, Class: "web", SLO: 2 * msec}},
	{"nodejs", 12, serverProfile{Handlers: 4, Requests: 8000, Service: 4 * msec, CV: 0.5, Pause: 800 * sim.Microsecond, Class: "web", SLO: 16 * msec}},
	{"php", 12, serverProfile{Handlers: 8, Requests: 9000, Service: 3 * msec, CV: 0.5, Pause: 800 * sim.Microsecond, Class: "web", SLO: 12 * msec}},
	// Key-value stores: client-driven requests with fsync-style pauses —
	// the blinker pattern where keeping the core warm pays most.
	{"leveldb", 15, serverProfile{Handlers: 2, Requests: 4000, Service: 1500 * sim.Microsecond, CV: 0.4, Pause: 5 * msec, PauseCV: 1.3, Class: "kv", SLO: 6 * msec}},
	{"redis", 14, serverProfile{Handlers: 2, Requests: 9000, Service: 800 * sim.Microsecond, CV: 0.4, Pause: 1800 * sim.Microsecond, PauseCV: 0.9, Class: "kv", SLO: 3200 * sim.Microsecond}},
	{"rocksdb-randread", 14, serverProfile{Handlers: 32, Requests: 40000, Service: 1500 * sim.Microsecond, CV: 0.3, Class: "kv", SLO: 6 * msec}},
	{"perl", 12, serverProfile{Handlers: 1, Requests: 1500, Service: 2500 * sim.Microsecond, CV: 0.5, Pause: 6 * msec, PauseCV: 1.3, Class: "script", SLO: 10 * msec}},
}

// ServerNames lists the server tests.
func ServerNames() []string {
	out := make([]string, len(serverTests))
	for i, t := range serverTests {
		out[i] = t.name
	}
	return out
}

func init() {
	for _, t := range serverTests {
		t := t
		register(&Workload{
			Name:         "server/" + t.name,
			Suite:        "server",
			PaperSeconds: t.secs,
			Install: func(m *cpu.Machine, scale float64) {
				t.prof.install(m, scale)
			},
		})
	}
}
