package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/sim"
)

// serverProfile models the Phoronix server tests (§5.6). Most are
// closed-loop: a fixed set of client-driven handlers issue the next
// request as soon as the previous one completes, each request being some
// compute plus an optional mid-request wait (disk, fsync). Wall time is
// then work-limited, so placement and frequency effects show directly —
// the leveldb/redis/perl pattern. Saturating tests (apache-siege at high
// concurrency) use an open-loop queue instead: arrivals outpace the pool
// and queueing dominates.
type serverProfile struct {
	// Handlers is the worker pool size.
	Handlers int
	// Requests is the total request count at paper scale.
	Requests int
	// Service is the per-request compute; Pause an optional mid-request
	// wait (I/O, fsync).
	Service sim.Duration
	CV      float64
	Pause   sim.Duration
	PauseCV float64
	// OpenLoop feeds requests through a queue at ArrivalFactor × pool
	// capacity instead of client-driven closed loops.
	OpenLoop      bool
	ArrivalFactor float64
	// Arrival optionally overrides the derived Poisson arrival process
	// with an explicit spec (see ParseArrivalSpec); it only applies to
	// open-loop profiles. QueueDepth bounds the request queue (default
	// 100_000 — effectively unbounded at paper request counts; arrivals
	// that find it full are shed and counted).
	Arrival    string
	QueueDepth int
	// Class labels the request class for SLO accounting ("web", "kv",
	// "script"); SLO is the per-request service-latency target. Requests
	// completing within SLO count toward the run's attainment customs
	// (slo_ok, slo_pct) and the "slo.<class>.*" counters.
	Class string
	SLO   sim.Duration
}

func (p serverProfile) install(m *cpu.Machine, scale float64) {
	reqs := scaleCount(p.Requests, scale, 50)
	svc := jitterCycles(m, p.Service, p.CV)
	acc := &sloAccum{class: p.class(), slo: p.SLO}

	if p.OpenLoop {
		p.installOpenLoop(m, reqs, svc, acc)
		return
	}

	// Closed loop: each handler serves its share back to back. The share
	// division leaves a remainder of reqs%Handlers requests; the first
	// remainder handlers take one extra so exactly reqs are served.
	perHandler := reqs / p.Handlers
	remainder := reqs % p.Handlers
	if perHandler < 1 && remainder == 0 {
		perHandler = 1
	}
	mkHandler := func(extra int) proc.Behavior {
		left := perHandler + extra
		state := 0
		reqStart := sim.Time(-1)
		return func(t *proc.Task, r *sim.Rand) proc.Action {
			switch state {
			case 0:
				// Reaching state 0 again means the previous request's
				// service compute (if any) just finished.
				if reqStart >= 0 {
					acc.record(t.Now - reqStart)
					reqStart = -1
				}
				if left == 0 {
					return proc.Exit{}
				}
				left--
				reqStart = t.Now
				if p.Pause > 0 {
					state = 1
				}
				return proc.Compute{Cycles: svc(r)}
			default:
				acc.record(t.Now - reqStart)
				reqStart = -1
				state = 0
				return proc.Sleep{D: r.LogNormalDur(p.Pause, maxf(p.PauseCV, 0.3))}
			}
		}
	}
	var actions []proc.Action
	for i := 0; i < p.Handlers; i++ {
		extra := 0
		if i < remainder {
			extra = 1
		}
		actions = append(actions, proc.Fork{Name: fmt.Sprintf("handler-%d", i), Behavior: mkHandler(extra)})
	}
	actions = append(actions, proc.WaitChildren{})
	m.Spawn("server-main", proc.Script(actions...))
	acc.finishOn(m, "server-main")
}

// class returns the profile's request class, defaulting to "web".
func (p serverProfile) class() string {
	if p.Class == "" {
		return "web"
	}
	return p.Class
}

// defaultQueueDepth preserves the historic request-queue bound:
// effectively unbounded at paper request counts, so the classic server
// profiles shed nothing, while saturation is still observable through
// the queue_hwm custom and the server.queue_full counter.
const defaultQueueDepth = 100_000

// installOpenLoop builds the queue-fed saturated shape on the shared
// open-loop pool: an engine-driven arrival source (Poisson at
// ArrivalFactor × pool capacity unless the profile names an explicit
// Arrival spec) feeding the bounded request queue. No admission policy,
// deadlines or retries: the classic profiles serve everything that fits
// in the queue, exactly as the old feeder loop did, but the offered
// load can no longer be throttled by the feeders' own scheduling.
func (p serverProfile) installOpenLoop(m *cpu.Machine, reqs int, svc func(*sim.Rand) int64, acc *sloAccum) {
	src := p.arrivalSource()
	depth := p.QueueDepth
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	installOpenLoopPool(m, openLoopCfg{
		handlers:   p.Handlers,
		total:      reqs,
		queueDepth: depth,
		src:        src,
		adm:        admitAll{},
		classes: []reqClass{{
			name: p.class(), share: 1, svc: svc, slo: p.SLO, acc: acc,
		}},
	})
}

// arrivalSource derives the profile's arrival process: an explicit
// Arrival spec when set, else Poisson at ArrivalFactor × the pool's
// nominal capacity Handlers/(Service+Pause).
func (p serverProfile) arrivalSource() ArrivalSource {
	if p.Arrival != "" {
		sp, err := ParseArrivalSpec(p.Arrival)
		if err != nil {
			panic(fmt.Sprintf("workload: bad arrival spec %q: %v", p.Arrival, err))
		}
		src, err := sp.Source()
		if err != nil {
			panic(fmt.Sprintf("workload: arrival spec %q: %v", p.Arrival, err))
		}
		return src
	}
	meanSvc := float64(p.Service + p.Pause)
	rate := maxf(p.ArrivalFactor, 0.05) * float64(p.Handlers) / meanSvc * float64(sim.Second)
	sp := &ArrivalSpec{Kind: ArrPoisson, Rate: rate}
	src, err := sp.Source()
	if err != nil {
		panic(fmt.Sprintf("workload: derived arrival rate invalid: %v", err))
	}
	return src
}

// serverTests models the §5.6 server results on the 2-socket 6130:
// apache-siege degrades under Nest at high concurrency, nginx/node/php
// hold parity, leveldb (+25%), redis (+7%) and perl (+16%) gain from warm
// cores, rocksdb random-read loses a few percent.
var serverTests = []struct {
	name string
	secs float64
	prof serverProfile
}{
	// SLO targets are ~4x the mean service time: generous enough that an
	// unloaded warm core always meets them, tight enough that cold
	// placements, slow ramps and queueing show up as attainment loss.
	{"apache-siege-250", 15, serverProfile{Handlers: 96, Requests: 60000, Service: 900 * sim.Microsecond, CV: 0.6, OpenLoop: true, ArrivalFactor: 1.3, Class: "web", SLO: 4 * msec}},
	{"apache-siege-100", 15, serverProfile{Handlers: 64, Requests: 40000, Service: 900 * sim.Microsecond, CV: 0.6, OpenLoop: true, ArrivalFactor: 0.9, Class: "web", SLO: 4 * msec}},
	{"nginx-200", 15, serverProfile{Handlers: 32, Requests: 60000, Service: 500 * sim.Microsecond, CV: 0.4, Pause: 300 * sim.Microsecond, PauseCV: 0.5, Class: "web", SLO: 2 * msec}},
	{"nodejs", 12, serverProfile{Handlers: 4, Requests: 8000, Service: 4 * msec, CV: 0.5, Pause: 800 * sim.Microsecond, Class: "web", SLO: 16 * msec}},
	{"php", 12, serverProfile{Handlers: 8, Requests: 9000, Service: 3 * msec, CV: 0.5, Pause: 800 * sim.Microsecond, Class: "web", SLO: 12 * msec}},
	// Key-value stores: client-driven requests with fsync-style pauses —
	// the blinker pattern where keeping the core warm pays most.
	{"leveldb", 15, serverProfile{Handlers: 2, Requests: 4000, Service: 1500 * sim.Microsecond, CV: 0.4, Pause: 5 * msec, PauseCV: 1.3, Class: "kv", SLO: 6 * msec}},
	{"redis", 14, serverProfile{Handlers: 2, Requests: 9000, Service: 800 * sim.Microsecond, CV: 0.4, Pause: 1800 * sim.Microsecond, PauseCV: 0.9, Class: "kv", SLO: 3200 * sim.Microsecond}},
	{"rocksdb-randread", 14, serverProfile{Handlers: 32, Requests: 40000, Service: 1500 * sim.Microsecond, CV: 0.3, Class: "kv", SLO: 6 * msec}},
	{"perl", 12, serverProfile{Handlers: 1, Requests: 1500, Service: 2500 * sim.Microsecond, CV: 0.5, Pause: 6 * msec, PauseCV: 1.3, Class: "script", SLO: 10 * msec}},
}

// ServerNames lists the server tests.
func ServerNames() []string {
	out := make([]string, len(serverTests))
	for i, t := range serverTests {
		out[i] = t.name
	}
	return out
}

func init() {
	for _, t := range serverTests {
		t := t
		register(&Workload{
			Name:         "server/" + t.name,
			Suite:        "server",
			PaperSeconds: t.secs,
			Install: func(m *cpu.Machine, scale float64) {
				t.prof.install(m, scale)
			},
		})
	}
}
