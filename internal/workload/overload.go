package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// overloadClass parameterises one request class of the overload preset.
type overloadClass struct {
	name    string
	prio    int // 0 = shed last
	share   float64
	service sim.Duration
	cv      float64
	slo     sim.Duration
}

// overloadMix is the reference class mix: a web tier (most traffic,
// tightest priority), a key-value tier, and batchy scripts that
// graceful degradation sheds first. Weighted mean service time: 900us.
var overloadMix = []overloadClass{
	{name: "web", prio: 0, share: 0.6, service: 800 * sim.Microsecond, cv: 0.5, slo: 4 * msec},
	{name: "kv", prio: 1, share: 0.3, service: 400 * sim.Microsecond, cv: 0.4, slo: 2 * msec},
	{name: "script", prio: 2, share: 0.1, service: 3 * msec, cv: 0.6, slo: 12 * msec},
}

// overloadProfile is the full overload-control serving shape: an
// open-loop multi-class pool with per-attempt deadlines, client retries
// with exponential backoff + jitter, and a pluggable admission policy.
type overloadProfile struct {
	handlers   int
	requests   int // base arrivals at paper scale
	queueDepth int
	factor     float64 // offered load as a multiple of nominal capacity
	policy     string  // none / cap / token / codel (reference tunings)
	mmpp       bool    // bursty MMPP arrivals instead of plain Poisson
	timeout    sim.Duration
	retries    int
	backoff    sim.Duration
	classes    []overloadClass
}

// capacityRate returns the pool's nominal throughput in requests per
// second: handlers / weighted mean service time.
func (p overloadProfile) capacityRate() float64 {
	var mean float64
	for _, cl := range p.classes {
		mean += cl.share * float64(cl.service)
	}
	return float64(p.handlers) / mean * float64(sim.Second)
}

// arrivalSpec derives the offered-load process at factor × capacity.
// MMPP bursts run at 2.5× the mean rate for an exponential ~4ms, then
// idle at 0.5× for ~12ms — the mean stays factor × capacity.
func (p overloadProfile) arrivalSpec() *ArrivalSpec {
	offered := p.factor * p.capacityRate()
	if p.mmpp {
		return &ArrivalSpec{Kind: ArrMMPP, Hi: 2.5 * offered, Lo: 0.5 * offered, On: 4 * msec, Off: 12 * msec}
	}
	return &ArrivalSpec{Kind: ArrPoisson, Rate: offered}
}

// admissionSpec maps the short policy names to reference tunings, all
// expressed relative to the pool size and capacity so they scale with
// the preset rather than hard-coding absolute queue depths.
func (p overloadProfile) admissionSpec() string {
	switch p.policy {
	case "none":
		return "none"
	case "cap":
		return fmt.Sprintf("cap:%d", 4*p.handlers)
	case "token":
		return fmt.Sprintf("token:rate=%s,burst=%d", fmtRate(p.capacityRate()), 2*p.handlers)
	case "codel":
		return "codel:target=2ms,interval=8ms"
	}
	return p.policy // already a full spec
}

func (p overloadProfile) install(m *cpu.Machine, scale float64) {
	reqs := scaleCount(p.requests, scale, 50)
	src, err := p.arrivalSpec().Source()
	if err != nil {
		panic(fmt.Sprintf("workload: overload arrival spec: %v", err))
	}
	adm, err := ParseAdmission(p.admissionSpec())
	if err != nil {
		panic(fmt.Sprintf("workload: overload admission spec: %v", err))
	}
	classes := make([]reqClass, len(p.classes))
	for i, cl := range p.classes {
		classes[i] = reqClass{
			name:  cl.name,
			prio:  cl.prio,
			share: cl.share,
			svc:   jitterCycles(m, cl.service, cl.cv),
			slo:   cl.slo,
			acc:   &sloAccum{class: cl.name, slo: cl.slo, quiet: len(p.classes) > 1},
		}
	}
	installOpenLoopPool(m, openLoopCfg{
		handlers:   p.handlers,
		total:      reqs,
		queueDepth: p.queueDepth,
		src:        src,
		adm:        adm,
		timeout:    p.timeout,
		maxRetries: p.retries,
		backoff:    p.backoff,
		classes:    classes,
		endToEnd:   true,
	})
}

// referenceOverload is the preset every overload/mix-* workload shares;
// only the arrival factor and admission policy vary across the grid.
func referenceOverload(factor float64, policy string) overloadProfile {
	return overloadProfile{
		handlers:   64,
		requests:   60000,
		queueDepth: 4096,
		factor:     factor,
		policy:     policy,
		mmpp:       true,
		timeout:    10 * msec,
		retries:    2,
		backoff:    1 * msec,
		classes:    overloadMix,
	}
}

// OverloadFactors and OverloadPolicies enumerate the registered
// overload grid axes (arrival factor × admission policy); the
// experiment sweeps them against schedulers.
var (
	OverloadFactors  = []float64{1.0, 1.5, 2.0}
	OverloadPolicies = []string{"none", "cap", "token", "codel"}
)

// OverloadMixName returns the registered workload name for one grid
// cell, e.g. "overload/mix-1.5-codel".
func OverloadMixName(factor float64, policy string) string {
	return fmt.Sprintf("overload/mix-%g-%s", factor, policy)
}

func init() {
	for _, f := range OverloadFactors {
		for _, pol := range OverloadPolicies {
			prof := referenceOverload(f, pol)
			register(&Workload{
				Name:         OverloadMixName(f, pol),
				Suite:        "overload",
				PaperSeconds: 1,
				Install:      prof.install,
			})
		}
	}
	// A diurnal single-class variant: the §5 idle-then-burst regime as a
	// day curve, no admission control, deadlines + retries only.
	diurnal := overloadProfile{
		handlers:   64,
		requests:   60000,
		queueDepth: 4096,
		policy:     "none",
		timeout:    10 * msec,
		retries:    2,
		backoff:    1 * msec,
		classes:    []overloadClass{{name: "web", prio: 0, share: 1, service: 900 * sim.Microsecond, cv: 0.5, slo: 4 * msec}},
	}
	register(&Workload{
		Name:         "overload/diurnal",
		Suite:        "overload",
		PaperSeconds: 1,
		Install: func(m *cpu.Machine, scale float64) {
			p := diurnal // copy: install must not mutate the template
			cap := p.capacityRate()
			sp := &ArrivalSpec{Kind: ArrDiurnal, Peak: 1.8 * cap, Trough: 0.3 * cap, Period: 100 * msec}
			src, err := sp.Source()
			if err != nil {
				panic(fmt.Sprintf("workload: diurnal arrival spec: %v", err))
			}
			reqs := scaleCount(p.requests, scale, 50)
			adm, _ := ParseAdmission("none")
			installOpenLoopPool(m, openLoopCfg{
				handlers:   p.handlers,
				total:      reqs,
				queueDepth: p.queueDepth,
				src:        src,
				adm:        adm,
				timeout:    p.timeout,
				maxRetries: p.retries,
				backoff:    p.backoff,
				classes: []reqClass{{
					name: "web", prio: 0, share: 1,
					svc: jitterCycles(m, p.classes[0].service, p.classes[0].cv),
					slo: p.classes[0].slo,
					acc: &sloAccum{class: "web", slo: p.classes[0].slo},
				}},
				endToEnd: true,
			})
		},
	})
}

// RegisterTraceWorkload registers an open-loop serving workload that
// replays the given arrival trace through the overload reference pool
// under the named admission policy ("none"/"cap"/"token"/"codel" or a
// full spec). Trace classes ("web"/"kv"/"script") select the reference
// mix's service distributions; unlabeled entries draw from the mix.
// The base arrival count is the trace length (scale still caps it).
func RegisterTraceWorkload(name string, entries []TraceEntry, policy string) error {
	sp := &ArrivalSpec{Kind: ArrTrace, Path: name, Trace: entries}
	if err := sp.Validate(); err != nil {
		return err
	}
	if _, err := ByName(name); err == nil {
		return fmt.Errorf("workload: %q already registered", name)
	}
	prof := referenceOverload(1, policy)
	register(&Workload{
		Name:         name,
		Suite:        "trace",
		PaperSeconds: 1,
		Install: func(m *cpu.Machine, scale float64) {
			src, err := sp.Source()
			if err != nil {
				panic(fmt.Sprintf("workload: trace source: %v", err))
			}
			adm, err := ParseAdmission(prof.admissionSpec())
			if err != nil {
				panic(fmt.Sprintf("workload: trace admission: %v", err))
			}
			classes := make([]reqClass, len(prof.classes))
			for i, cl := range prof.classes {
				classes[i] = reqClass{
					name: cl.name, prio: cl.prio, share: cl.share,
					svc: jitterCycles(m, cl.service, cl.cv),
					slo: cl.slo,
					acc: &sloAccum{class: cl.name, slo: cl.slo, quiet: true},
				}
			}
			installOpenLoopPool(m, openLoopCfg{
				handlers:   prof.handlers,
				total:      scaleCount(len(entries), scale, 1),
				queueDepth: prof.queueDepth,
				src:        src,
				adm:        adm,
				timeout:    prof.timeout,
				maxRetries: prof.retries,
				backoff:    prof.backoff,
				classes:    classes,
				endToEnd:   true,
			})
		},
	})
	return nil
}
