package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/sim"
)

// hackbench models `hackbench -g G -l L` (§5.6): G groups of senders and
// receivers exchanging messages over socketpair-like channels as fast as
// the scheduler can wake them. Execution time is almost pure scheduling
// cost (96% system time with CFS), so Nest's longer core-selection path
// and the instruction-cache misses of stacking many communicating tasks
// on few warm cores turn into a slowdown — the paper's worst case.
type hackbenchProfile struct {
	Groups   int
	Pairs    int // sender/receiver pairs per group (20 in the original)
	Messages int // messages per sender
	MsgWork  sim.Duration
}

func (p hackbenchProfile) install(m *cpu.Machine, scale float64) {
	msgs := scaleCount(p.Messages, scale, 20)
	work := nominalCycles(m, p.MsgWork)

	var actions []proc.Action
	for g := 0; g < p.Groups; g++ {
		for q := 0; q < p.Pairs; q++ {
			ch := proc.NewChan(fmt.Sprintf("hb-%d-%d", g, q), 1)
			sender := proc.Repeat(msgs, proc.Compute{Cycles: work}, proc.Send{Ch: ch})
			receiver := proc.Repeat(msgs, proc.Recv{Ch: ch}, proc.Compute{Cycles: work})
			actions = append(actions,
				proc.Fork{Name: "sender", Behavior: sender},
				proc.Fork{Name: "receiver", Behavior: receiver},
			)
		}
	}
	actions = append(actions, proc.WaitChildren{})
	m.Spawn("hackbench", proc.Script(actions...))
}

// schbench models the scheduling-latency benchmark (§5.6): message
// threads dispatch work items to workers and the metric is the p99.9
// wakeup latency, read from Result.WakeLatency.
type schbenchProfile struct {
	MessageThreads int
	Workers        int // per message thread
	Requests       int // per worker
	Work           sim.Duration
}

func (p schbenchProfile) install(m *cpu.Machine, scale float64) {
	reqs := scaleCount(p.Requests, scale, 30)
	work := nominalCycles(m, p.Work)

	var actions []proc.Action
	for mt := 0; mt < p.MessageThreads; mt++ {
		chans := make([]*proc.Chan, p.Workers)
		for w := 0; w < p.Workers; w++ {
			ch := proc.NewChan(fmt.Sprintf("sb-%d-%d", mt, w), 4)
			chans[w] = ch
			worker := proc.Repeat(reqs, proc.Recv{Ch: ch}, proc.Compute{Cycles: work})
			actions = append(actions, proc.Fork{Name: "worker", Behavior: worker})
		}
		msgr := func() proc.Behavior {
			round := 0
			idx := 0
			return func(t *proc.Task, r *sim.Rand) proc.Action {
				if round >= reqs {
					return proc.Exit{}
				}
				if idx < len(chans) {
					ch := chans[idx]
					idx++
					return proc.Send{Ch: ch}
				}
				idx = 0
				round++
				return proc.Sleep{D: 100 * sim.Microsecond}
			}
		}
		actions = append(actions, proc.Fork{Name: "messenger", Behavior: msgr()})
	}
	actions = append(actions, proc.WaitChildren{})
	m.Spawn("schbench", proc.Script(actions...))
}

func init() {
	// hackbench -g 100 -l 10000 scaled down by group count; message count
	// scales with the run scale.
	register(&Workload{
		Name:         "micro/hackbench",
		Suite:        "micro",
		PaperSeconds: 22.5, // 5218, CFS-schedutil
		Install: func(m *cpu.Machine, scale float64) {
			hackbenchProfile{
				Groups:   25,
				Pairs:    10,
				Messages: 40000,
				MsgWork:  25 * sim.Microsecond,
			}.install(m, scale)
		},
	})
	// schbench configurations from the paper: 2-32 message threads and
	// 2-32 workers each.
	for _, cfg := range []struct{ mt, w int }{
		{2, 2}, {2, 8}, {2, 16}, {2, 32},
		{8, 8}, {8, 16}, {8, 32},
		{16, 16}, {16, 32},
		{32, 8}, {32, 16}, {32, 32},
	} {
		cfg := cfg
		register(&Workload{
			Name:         fmt.Sprintf("micro/schbench-m%d-w%d", cfg.mt, cfg.w),
			Suite:        "micro",
			PaperSeconds: 10,
			Install: func(m *cpu.Machine, scale float64) {
				schbenchProfile{
					MessageThreads: cfg.mt,
					Workers:        cfg.w,
					Requests:       2000,
					Work:           200 * sim.Microsecond,
				}.install(m, scale)
			},
		})
	}
}
