// Package workload defines the benchmark families of the paper's
// evaluation (§5) as synthetic task programs: the software-configuration
// suite, DaCapo, the NAS parallel benchmarks, the Phoronix multicore
// suite, hackbench/schbench and the server tests.
//
// The paper's results are driven by task shape — how many tasks exist,
// how long they run, how often they fork, block and wake — rather than
// instruction mix, so each benchmark is modelled by a small parameterised
// program whose shape matches what §5 reports (task counts, runtimes,
// underload). Absolute durations are expressed as compute time at the
// machine's nominal frequency; speedups then emerge purely from placement
// and frequency dynamics.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/proc"
	"repro/internal/sim"
)

// Workload is one runnable benchmark.
type Workload struct {
	// Name is the benchmark's identifier, e.g. "configure/llvm_ninja".
	Name string
	// Suite groups workloads ("configure", "dacapo", "nas", "phoronix",
	// "micro", "server").
	Suite string
	// PaperSeconds is the CFS-schedutil runtime the paper reports (on
	// the 64-core 5218 where available), used to sanity-check scale.
	PaperSeconds float64
	// Install spawns the workload's root tasks on m. scale in (0, 1]
	// shortens the run by reducing iteration counts, never task sizes,
	// so per-task frequency dynamics are preserved.
	Install func(m *cpu.Machine, scale float64)
}

// registry holds all defined workloads by name.
var registry = map[string]*Workload{}

func register(w *Workload) *Workload {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate %q", w.Name))
	}
	registry[w.Name] = w
	return w
}

// ByName returns a registered workload.
func ByName(name string) (*Workload, error) {
	if w, ok := registry[name]; ok {
		return w, nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// Names returns all registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Suite returns the workloads of a suite in registration-stable (sorted)
// order.
func Suite(suite string) []*Workload {
	var out []*Workload
	for _, n := range Names() {
		if registry[n].Suite == suite {
			out = append(out, registry[n])
		}
	}
	return out
}

// scaleCount scales an iteration count, keeping at least min.
func scaleCount(n int, scale float64, min int) int {
	v := int(float64(n)*scale + 0.5)
	if v < min {
		v = min
	}
	return v
}

// nominalCycles converts duration-at-nominal into cycles for m's machine.
func nominalCycles(m *cpu.Machine, d sim.Duration) int64 {
	return proc.Cycles(d, m.Spec().Nominal)
}

// jitterCycles returns lognormally jittered work around mean (at
// nominal), using the machine's RNG deterministically.
func jitterCycles(m *cpu.Machine, mean sim.Duration, cv float64) func(r *sim.Rand) int64 {
	nom := m.Spec().Nominal
	return func(r *sim.Rand) int64 {
		return proc.Cycles(r.LogNormalDur(mean, cv), nom)
	}
}

// compute builds a Compute action for d at nominal frequency.
func compute(m *cpu.Machine, d sim.Duration) proc.Action {
	return proc.Compute{Cycles: nominalCycles(m, d)}
}

// spawnWorkers forks n identical workers from a coordinator root task and
// waits for them, the common shape of the parallel benchmarks.
func spawnWorkers(m *cpu.Machine, name string, n int, worker func(i int) proc.Behavior) {
	actions := make([]proc.Action, 0, n+1)
	for i := 0; i < n; i++ {
		actions = append(actions, proc.Fork{Name: fmt.Sprintf("%s-%d", name, i), Behavior: worker(i)})
	}
	actions = append(actions, proc.WaitChildren{})
	m.Spawn(name, proc.Script(actions...))
}

// MachineFits reports whether the workload's natural parallelism fits the
// machine (used by the harness to skip configurations the paper did not
// run).
func MachineFits(w *Workload, spec *machine.Spec) bool { return true }
