package workload

import (
	"reflect"
	"testing"
)

// FuzzParseArrivalSpec checks the arrival-DSL parser never panics and
// that every accepted spec survives a canonicalisation round trip:
// String() must re-parse to the identical spec and be a fixpoint, and
// Validate must accept whatever the parser let through (no NaN,
// negative or out-of-range rates sneak in).
func FuzzParseArrivalSpec(f *testing.F) {
	seeds := []string{
		"",
		"poisson:rate=2500/s",
		"poisson:rate=0.001/s",
		"poisson:rate=1e9/s",
		"mmpp:hi=100000/s,lo=2000/s,on=4ms,off=12ms",
		"mmpp:hi=5000/s,lo=0/s",
		"mmpp:hi=1/s,lo=1/s,on=1ns,off=999999999s",
		"diurnal:peak=80000/s,trough=1000/s,period=200ms",
		"diurnal:peak=10/s,trough=0/s,period=2s",
		"trace:arrivals.jsonl",
		"poisson:rate=NaN/s",
		"poisson:rate=-5/s",
		"poisson:rate=1e308/s",
		"mmpp:hi=10/s,lo=100/s",
		"mmpp:hi=10/s,lo=1/s,on=0.0000001ns",
		"diurnal:peak=1/s,trough=2/s,period=1s",
		"poisson:rate=1/s,rate=2/s",
		"trace:",
		"nope:rate=1/s",
		"poisson:",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseArrivalSpec(s)
		if err != nil {
			return // rejected input: only the absence of a panic matters
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("parsed spec %q fails its own validation: %v", s, err)
		}
		canon := sp.String()
		sp2, err := ParseArrivalSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q of %q fails to re-parse: %v", canon, s, err)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("round trip of %q changed the spec: %+v != %+v", s, sp, sp2)
		}
		if again := sp2.String(); again != canon {
			t.Fatalf("canonical form not a fixpoint: %q -> %q", canon, again)
		}
		if r := sp.MeanRate(); r != r || r < 0 {
			t.Fatalf("spec %q has invalid mean rate %g", s, r)
		}
	})
}

// FuzzParseFanoutSpec holds the fan-out DSL to the same contract as the
// arrival DSL: no panics, accepted specs validate, and the canonical
// form is a re-parsable fixpoint.
func FuzzParseFanoutSpec(f *testing.F) {
	seeds := []string{
		"",
		"fanout:width=16",
		"fanout:width=16,stages=2,agg=all",
		"fanout:width=16,stages=2,agg=quorum:12",
		"fanout:width=1,stages=1,agg=quorum:1",
		"fanout:width=1024,stages=16,agg=all",
		"fanout:width=0",
		"fanout:width=-3",
		"fanout:width=2000",
		"fanout:width=8,stages=0",
		"fanout:width=8,stages=99",
		"fanout:width=8,agg=quorum:9",
		"fanout:width=8,agg=quorum:0",
		"fanout:width=8,agg=majority",
		"fanout:width=8,width=9",
		"fanout:",
		"nope:width=8",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseFanoutSpec(s)
		if err != nil {
			return
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("parsed spec %q fails its own validation: %v", s, err)
		}
		canon := sp.String()
		sp2, err := ParseFanoutSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q of %q fails to re-parse: %v", canon, s, err)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("round trip of %q changed the spec: %+v != %+v", s, sp, sp2)
		}
		if again := sp2.String(); again != canon {
			t.Fatalf("canonical form not a fixpoint: %q -> %q", canon, again)
		}
		if n := sp.Need(); n < 1 || n > sp.Width {
			t.Fatalf("spec %q needs %d of %d completions", s, n, sp.Width)
		}
	})
}

// FuzzParseHedgeSpec: same contract for the hedge DSL.
func FuzzParseHedgeSpec(f *testing.F) {
	seeds := []string{
		"",
		"hedge:none",
		"hedge:after=1ms",
		"hedge:after=1ms,max=2",
		"hedge:after=p95",
		"hedge:after=p99,max=8",
		"hedge:after=p50,max=1",
		"hedge:after=p0",
		"hedge:after=p100",
		"hedge:after=0ms",
		"hedge:after=-1ms",
		"hedge:after=1ms,max=0",
		"hedge:after=1ms,max=99",
		"hedge:max=2",
		"hedge:",
		"hedge:none,max=2",
		"nope:after=1ms",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseHedgeSpec(s)
		if err != nil {
			return
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("parsed spec %q fails its own validation: %v", s, err)
		}
		canon := sp.String()
		sp2, err := ParseHedgeSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q of %q fails to re-parse: %v", canon, s, err)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("round trip of %q changed the spec: %+v != %+v", s, sp, sp2)
		}
		if again := sp2.String(); again != canon {
			t.Fatalf("canonical form not a fixpoint: %q -> %q", canon, again)
		}
	})
}
