package workload

import (
	"reflect"
	"testing"
)

// FuzzParseArrivalSpec checks the arrival-DSL parser never panics and
// that every accepted spec survives a canonicalisation round trip:
// String() must re-parse to the identical spec and be a fixpoint, and
// Validate must accept whatever the parser let through (no NaN,
// negative or out-of-range rates sneak in).
func FuzzParseArrivalSpec(f *testing.F) {
	seeds := []string{
		"",
		"poisson:rate=2500/s",
		"poisson:rate=0.001/s",
		"poisson:rate=1e9/s",
		"mmpp:hi=100000/s,lo=2000/s,on=4ms,off=12ms",
		"mmpp:hi=5000/s,lo=0/s",
		"mmpp:hi=1/s,lo=1/s,on=1ns,off=999999999s",
		"diurnal:peak=80000/s,trough=1000/s,period=200ms",
		"diurnal:peak=10/s,trough=0/s,period=2s",
		"trace:arrivals.jsonl",
		"poisson:rate=NaN/s",
		"poisson:rate=-5/s",
		"poisson:rate=1e308/s",
		"mmpp:hi=10/s,lo=100/s",
		"mmpp:hi=10/s,lo=1/s,on=0.0000001ns",
		"diurnal:peak=1/s,trough=2/s,period=1s",
		"poisson:rate=1/s,rate=2/s",
		"trace:",
		"nope:rate=1/s",
		"poisson:",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseArrivalSpec(s)
		if err != nil {
			return // rejected input: only the absence of a panic matters
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("parsed spec %q fails its own validation: %v", s, err)
		}
		canon := sp.String()
		sp2, err := ParseArrivalSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q of %q fails to re-parse: %v", canon, s, err)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("round trip of %q changed the spec: %+v != %+v", s, sp, sp2)
		}
		if again := sp2.String(); again != canon {
			t.Fatalf("canonical form not a fixpoint: %q -> %q", canon, again)
		}
		if r := sp.MeanRate(); r != r || r < 0 {
			t.Fatalf("spec %q has invalid mean rate %g", s, r)
		}
	})
}
