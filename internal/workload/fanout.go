package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Fan-out request topologies: one admitted request spawns W parallel
// subtasks per stage and completes when its aggregation rule is
// satisfied ("all" slots, or a quorum of K). The parent's deadline is
// split into per-stage budgets that propagate to every subtask, slow
// slots are hedged with a duplicate attempt after a deterministic
// delay, and losing hedges / doomed requests cancel their outstanding
// siblings. This is the tail-at-scale serving shape where one
// straggler subtask sets the request's latency — exactly where warm
// cores should pay off — so the robustness mechanisms (hedging,
// deadline budgets, cancellation) are the point. See docs/ROBUSTNESS.md.

// Bounds on the fan-out DSL. Width is capped so one request cannot
// flood the bounded queue past any plausible configuration; stages so
// deadline budgets stay meaningful.
const (
	maxFanWidth  = 1024
	maxFanStages = 16
	maxHedges    = 8
)

// FanoutSpec describes a fan-out topology in a canonical, parseable
// form (see ParseFanoutSpec).
type FanoutSpec struct {
	// Width is the number of parallel subtask slots per stage.
	Width int
	// Stages is the number of sequential fan-out stages.
	Stages int
	// Quorum is the number of slots that must complete per stage;
	// 0 means all Width slots (agg=all).
	Quorum int
}

// ParseFanoutSpec parses the fan-out DSL:
//
//	fanout:width=<W>[,stages=<S>][,agg=all|quorum:<K>]
//
// Stages defaults to 1 and agg to all. Parse and String are mutual
// fixpoints (fuzzed by FuzzParseFanoutSpec).
func ParseFanoutSpec(s string) (*FanoutSpec, error) {
	s = strings.TrimSpace(s)
	head, rest, ok := strings.Cut(s, ":")
	if !ok || head != "fanout" {
		return nil, fmt.Errorf("fanout spec %q: want fanout:width=<W>,stages=<S>,agg=all|quorum:<K>", s)
	}
	sp := &FanoutSpec{Stages: 1}
	err := parseKV(rest, map[string]func(string) error{
		"width":  func(v string) (err error) { sp.Width, err = parseFanInt(v, "width"); return },
		"stages": func(v string) (err error) { sp.Stages, err = parseFanInt(v, "stages"); return },
		"agg": func(v string) error {
			if v == "all" {
				sp.Quorum = 0
				return nil
			}
			k, ok := strings.CutPrefix(v, "quorum:")
			if !ok {
				return fmt.Errorf("bad agg %q (want all or quorum:<K>)", v)
			}
			var err error
			sp.Quorum, err = parseFanInt(k, "quorum")
			return err
		},
	}, "width")
	if err != nil {
		return nil, err
	}
	return sp, sp.Validate()
}

// parseFanInt parses a small positive integer DSL field.
func parseFanInt(s, what string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad %s %q (want a positive integer)", what, s)
	}
	return v, nil
}

// String renders the canonical DSL form (see ParseFanoutSpec).
func (sp *FanoutSpec) String() string {
	agg := "all"
	if sp.Quorum > 0 {
		agg = fmt.Sprintf("quorum:%d", sp.Quorum)
	}
	return fmt.Sprintf("fanout:width=%d,stages=%d,agg=%s", sp.Width, sp.Stages, agg)
}

// Validate checks semantic constraints beyond syntax.
func (sp *FanoutSpec) Validate() error {
	if sp.Width < 1 || sp.Width > maxFanWidth {
		return fmt.Errorf("fanout width %d out of range [1,%d]", sp.Width, maxFanWidth)
	}
	if sp.Stages < 1 || sp.Stages > maxFanStages {
		return fmt.Errorf("fanout stages %d out of range [1,%d]", sp.Stages, maxFanStages)
	}
	if sp.Quorum < 0 || sp.Quorum > sp.Width {
		return fmt.Errorf("fanout quorum %d out of range [1,width=%d]", sp.Quorum, sp.Width)
	}
	return nil
}

// Need returns the number of slots that must complete per stage.
func (sp *FanoutSpec) Need() int {
	if sp.Quorum > 0 {
		return sp.Quorum
	}
	return sp.Width
}

// HedgeKind enumerates the hedge delay policies.
type HedgeKind int

const (
	// HedgeNone never issues hedges.
	HedgeNone HedgeKind = iota
	// HedgeFixed re-issues a slot after a fixed delay.
	HedgeFixed
	// HedgePctl re-issues after the q-th percentile of the completed
	// subtask latencies observed so far in this run (the classic
	// tail-at-scale "hedge after p95"). Until hedgeWarmup completions
	// have been observed no hedges fire.
	HedgePctl
)

// HedgeSpec describes a hedge policy in a canonical, parseable form
// (see ParseHedgeSpec). The zero value is "no hedging".
type HedgeSpec struct {
	Kind HedgeKind
	// After is the fixed delay (HedgeFixed).
	After sim.Duration
	// Pct is the latency percentile in (0,100) (HedgePctl).
	Pct int
	// Max bounds hedges per slot per stage (1..maxHedges).
	Max int
}

// ParseHedgeSpec parses the hedge-policy DSL:
//
//	hedge:none                     never hedge
//	hedge:after=<dur>[,max=<n>]    duplicate a slot after a fixed delay
//	hedge:after=p<q>[,max=<n>]     ... after the q-th pctl of observed latency
//
// Max defaults to 1. Parse and String are mutual fixpoints (fuzzed by
// FuzzParseHedgeSpec).
func ParseHedgeSpec(s string) (*HedgeSpec, error) {
	s = strings.TrimSpace(s)
	head, rest, ok := strings.Cut(s, ":")
	if !ok || head != "hedge" {
		return nil, fmt.Errorf("hedge spec %q: want hedge:none or hedge:after=<dur|p95>,max=<n>", s)
	}
	if rest == "none" {
		return &HedgeSpec{Kind: HedgeNone}, nil
	}
	sp := &HedgeSpec{Max: 1}
	err := parseKV(rest, map[string]func(string) error{
		"after": func(v string) error {
			if q, ok := strings.CutPrefix(v, "p"); ok {
				pct, err := parseFanInt(q, "percentile")
				if err != nil {
					return err
				}
				sp.Kind, sp.Pct = HedgePctl, pct
				return nil
			}
			d, err := parsePosDur(v)
			if err != nil {
				return err
			}
			sp.Kind, sp.After = HedgeFixed, d
			return nil
		},
		"max": func(v string) (err error) { sp.Max, err = parseFanInt(v, "max"); return },
	}, "after")
	if err != nil {
		return nil, err
	}
	return sp, sp.Validate()
}

// String renders the canonical DSL form (see ParseHedgeSpec).
func (sp *HedgeSpec) String() string {
	switch sp.Kind {
	case HedgeFixed:
		return fmt.Sprintf("hedge:after=%s,max=%d", fmtArrDur(sp.After), sp.Max)
	case HedgePctl:
		return fmt.Sprintf("hedge:after=p%d,max=%d", sp.Pct, sp.Max)
	}
	return "hedge:none"
}

// Validate checks semantic constraints beyond syntax.
func (sp *HedgeSpec) Validate() error {
	switch sp.Kind {
	case HedgeNone:
		return nil
	case HedgeFixed:
		if sp.After <= 0 || sp.After > maxArrDur {
			return fmt.Errorf("hedge delay out of range")
		}
	case HedgePctl:
		if sp.Pct < 1 || sp.Pct > 99 {
			return fmt.Errorf("hedge percentile %d out of range [1,99]", sp.Pct)
		}
	default:
		return fmt.Errorf("unknown hedge kind %d", int(sp.Kind))
	}
	if sp.Max < 1 || sp.Max > maxHedges {
		return fmt.Errorf("hedge max %d out of range [1,%d]", sp.Max, maxHedges)
	}
	return nil
}

// hedgeWarmup is how many completed subtask latencies the percentile
// hedge policy observes before it starts firing: hedging off a handful
// of samples would chase noise, and a deterministic threshold keeps the
// delay a pure function of the simulation state (no wall clock, no
// extra RNG draws — base arrivals stay identical across schedulers).
const hedgeWarmup = 64

// Subtask-attempt outcomes. Every issued attempt (primaries and hedges
// alike) terminates in exactly one; the fanout_conservation invariant
// probe holds the workload to that, faults included.
const (
	fsubDone = iota
	fsubCancel
	fsubTimeout
	fsubShed
)

// fsubName maps subtask outcomes to the obs Fanout event's actions.
var fsubName = [...]string{"sub_done", "sub_cancel", "sub_timeout", "sub_shed"}

// fanReq is the fan-out state of one in-flight parent request: the
// current stage's per-slot completion/outstanding/hedge accounting and
// the aggregate terminal bookkeeping. Pooled on the owning openLoop;
// gen detects stale hedge timers against a recycled record.
type fanReq struct {
	ol *openLoop
	// rq is the parent request; nil once the parent settled (completed,
	// or doomed and handed back to the client for retry accounting).
	rq    *request
	class int
	stage int
	// stageStart/stageDeadline delimit the current stage's budget:
	// the parent's remaining deadline split evenly across the stages
	// still to run (0 = no deadline).
	stageStart    sim.Time
	stageDeadline sim.Time
	need          int // slots that must complete this stage
	done          []bool
	outstanding   []int16 // issued, not yet settled, per slot (this stage)
	hedged        []int16 // hedges issued per slot (this stage)
	pending       []int16 // armed hedge timers per slot (this stage)
	doneN, failN  int
	finT          []sim.Time // slot completion times this stage, in order
	open          int        // attempts issued but not settled, all stages
	doomed        bool
	pooled        bool
	gen           uint32
	nextFree      *fanReq
}

// hedgeTimer is a pooled engine callback: when it fires, slot gets a
// duplicate attempt unless the slot (or the whole request) resolved in
// the meantime. gen/stage make stale timers self-detecting.
type hedgeTimer struct {
	ol    *openLoop
	fr    *fanReq
	gen   uint32
	stage int
	slot  int
	next  *hedgeTimer
}

// RunAt implements sim.Runner: the hedge delay elapsed.
func (ht *hedgeTimer) RunAt(now sim.Time) { ht.ol.hedgeFire(ht, now) }

//pool:get
func (ol *openLoop) newFanReq(rq *request) *fanReq {
	fr := ol.fanFree
	if fr == nil {
		fr = &fanReq{ol: ol}
	} else {
		ol.fanFree = fr.nextFree
		fr.nextFree = nil
	}
	w := ol.cfg.fan.Width
	if cap(fr.done) < w {
		fr.done = make([]bool, w)
		fr.outstanding = make([]int16, w)
		fr.hedged = make([]int16, w)
		fr.pending = make([]int16, w)
	}
	fr.done = fr.done[:w]
	fr.outstanding = fr.outstanding[:w]
	fr.hedged = fr.hedged[:w]
	fr.pending = fr.pending[:w]
	fr.resetStage()
	fr.rq, fr.class = rq, rq.class
	fr.stage, fr.open = 0, 0
	fr.need = ol.cfg.fan.Need()
	fr.doomed, fr.pooled = false, false
	return fr
}

// resetStage clears the per-stage slot state.
func (fr *fanReq) resetStage() {
	for i := range fr.done {
		fr.done[i] = false
		fr.outstanding[i] = 0
		fr.hedged[i] = 0
		fr.pending[i] = 0
	}
	fr.doneN, fr.failN = 0, 0
	fr.finT = fr.finT[:0]
}

// maybeFreeFanReq recycles fr once the parent has settled and every
// issued attempt is terminal; gen++ invalidates any hedge timers still
// in flight against the old incarnation.
//
//pool:put
func (ol *openLoop) maybeFreeFanReq(fr *fanReq) {
	if fr.pooled || fr.rq != nil || fr.open != 0 {
		return
	}
	fr.pooled = true
	fr.gen++
	fr.nextFree = ol.fanFree
	ol.fanFree = fr
}

//pool:get
func (ol *openLoop) newHedgeTimer(fr *fanReq, slot int) *hedgeTimer {
	ht := ol.htFree
	if ht == nil {
		ht = &hedgeTimer{ol: ol}
	} else {
		ol.htFree = ht.next
		ht.next = nil
	}
	ht.fr, ht.gen, ht.stage, ht.slot = fr, fr.gen, fr.stage, slot
	return ht
}

//pool:put
func (ol *openLoop) freeHedgeTimer(ht *hedgeTimer) {
	ht.fr = nil
	ht.next = ol.htFree
	ol.htFree = ht
}

// startFanout begins an admitted parent's fan-out lifecycle. The parent
// never occupies the request queue itself; its W subtask attempts do.
func (ol *openLoop) startFanout(rq *request) {
	ol.startStage(ol.newFanReq(rq))
}

// startStage computes the stage's deadline budget — the parent's
// remaining time split evenly across the stages still to run, so the
// last stage's budget is exactly the parent deadline — and issues the
// W primary subtask attempts.
func (ol *openLoop) startStage(fr *fanReq) {
	now := ol.m.Engine().Now()
	fr.stageStart, fr.stageDeadline = now, 0
	if fr.rq.deadline > 0 {
		left := fr.rq.deadline - now
		if left < 0 {
			left = 0
		}
		fr.stageDeadline = now + left/sim.Time(ol.cfg.fan.Stages-fr.stage)
	}
	for slot := 0; slot < ol.cfg.fan.Width; slot++ {
		if fr.rq == nil {
			return // a synchronous shed already doomed the request
		}
		ol.issueSub(fr, slot, 0)
	}
}

// issueSub issues one subtask attempt (hedgeN > 0 for hedges) into the
// bounded queue. The next hedge is armed before the enqueue so a shed
// primary can still be rescued by its hedge.
func (ol *openLoop) issueSub(fr *fanReq, slot, hedgeN int) {
	now := ol.m.Engine().Now()
	att := ol.newRequest(fr.class, 0)
	att.fan, att.slot, att.fstage, att.hedgeN = fr, slot, fr.stage, hedgeN
	att.arrived, att.deadline = now, fr.stageDeadline
	fr.open++
	fr.outstanding[slot]++
	ol.fanIssued++
	ol.fanOutstanding++
	ol.armHedge(fr, slot)
	if !ol.m.InjectSend(ol.ch, false) {
		if h := ol.m.Obs(); h.Enabled() {
			h.Count("server.queue_full", 1)
		}
		ol.settleSub(att, fsubShed, "queue_full", 0)
		return
	}
	att.enqueued = now
	ol.queue = append(ol.queue, att)
}

// armHedge schedules a duplicate attempt for slot after the policy's
// delay, unless the per-slot hedge budget (issued + armed) is spent or
// the percentile policy is still warming up.
func (ol *openLoop) armHedge(fr *fanReq, slot int) {
	hs := &ol.cfg.hedge
	if hs.Kind == HedgeNone || int(fr.hedged[slot])+int(fr.pending[slot]) >= hs.Max {
		return
	}
	delay, ok := ol.hedgeDelay()
	if !ok {
		return
	}
	fr.pending[slot]++
	ol.m.Engine().PostRunAfter(delay, ol.newHedgeTimer(fr, slot))
}

// hedgeDelay returns the current hedge delay. Deterministic: fixed
// delays are config, percentile delays are a pure function of the
// completed-subtask latency histogram — no RNG draws, so the base
// arrival stream stays identical across schedulers and policies.
func (ol *openLoop) hedgeDelay() (sim.Duration, bool) {
	hs := &ol.cfg.hedge
	switch hs.Kind {
	case HedgeFixed:
		return hs.After, true
	case HedgePctl:
		if ol.fanLat.Count() < hedgeWarmup {
			return 0, false
		}
		d := ol.fanLat.Percentile(float64(hs.Pct))
		if d < 1 {
			d = 1
		}
		return d, true
	}
	return 0, false
}

// hedgeFire runs when a hedge timer expires: issue the duplicate, or
// decline if the slot/stage/request resolved (or the stage deadline
// passed) in the meantime. A decline that leaves the slot with no
// outstanding attempts and no armed timers marks the slot failed —
// otherwise a slot whose last attempt already timed out would wait on
// a hedge that never comes.
func (ol *openLoop) hedgeFire(ht *hedgeTimer, now sim.Time) {
	fr, slot := ht.fr, ht.slot
	if fr.gen == ht.gen && fr.stage == ht.stage {
		fr.pending[slot]--
		if !fr.doomed && fr.rq != nil && !fr.done[slot] {
			if fr.stageDeadline == 0 || now < fr.stageDeadline {
				fr.hedged[slot]++
				ol.fanHedges++
				if h := ol.m.Obs(); h.Enabled() {
					h.Emit(obs.Fanout{
						T: now, Action: "hedge", Class: ol.cfg.classes[fr.class].name,
						Stage: fr.stage, Slot: slot, Attempt: int(fr.hedged[slot]),
					})
				}
				ol.issueSub(fr, slot, int(fr.hedged[slot]))
			} else {
				ol.maybeSlotFailed(fr, slot, fsubTimeout)
			}
		}
	}
	ol.freeHedgeTimer(ht)
}

// subStale reports whether a subtask attempt no longer matters and why:
// the request is doomed, already complete, its stage has moved on
// (quorum satisfied without this slot), or a sibling attempt won the
// slot (losing hedge).
func subStale(fr *fanReq, rq *request) (string, bool) {
	switch {
	case fr.doomed:
		return "doomed", true
	case fr.rq == nil:
		return "request_done", true
	case rq.fstage != fr.stage:
		return "stage_over", true
	case fr.done[rq.slot]:
		return "hedge_lost", true
	}
	return "", false
}

// subAtDequeue settles a popped subtask attempt that should not be
// served — cancelled while queued (no work wasted) or past its stage
// deadline. It reports whether the attempt was settled.
func (ol *openLoop) subAtDequeue(rq *request, now sim.Time) bool {
	if cause, stale := subStale(rq.fan, rq); stale {
		ol.settleSub(rq, fsubCancel, cause, 0)
		return true
	}
	if rq.deadline > 0 && now > rq.deadline {
		ol.settleSub(rq, fsubTimeout, "queue", sim.Duration(now-rq.enqueued))
		return true
	}
	return false
}

// subServed settles a subtask attempt whose service just finished:
// completed within the stage budget, served too late, or served for a
// slot/request that resolved meanwhile (wasted work, still cancelled).
func (ol *openLoop) subServed(rq *request, now sim.Time) {
	lat := sim.Duration(now - rq.enqueued)
	if cause, stale := subStale(rq.fan, rq); stale {
		ol.settleSub(rq, fsubCancel, cause, lat)
		return
	}
	if rq.deadline > 0 && now > rq.deadline {
		ol.settleSub(rq, fsubTimeout, "served", lat)
		return
	}
	ol.settleSub(rq, fsubDone, "", lat)
}

// settleSub records one subtask attempt's terminal outcome — exactly
// one per issued attempt — and advances the slot/stage/request state
// machine it feeds.
func (ol *openLoop) settleSub(att *request, outcome int, cause string, lat sim.Duration) {
	fr := att.fan
	now := ol.m.Engine().Now()
	fr.open--
	ol.fanOutstanding--
	switch outcome {
	case fsubDone:
		ol.fanDone++
	case fsubCancel:
		ol.fanCancelled++
	case fsubTimeout:
		ol.fanTimeout++
	case fsubShed:
		ol.fanShed++
	}
	if h := ol.m.Obs(); h.Enabled() {
		h.Emit(obs.Fanout{
			T: now, Action: fsubName[outcome], Class: ol.cfg.classes[att.class].name,
			Stage: att.fstage, Slot: att.slot, Attempt: att.hedgeN, Cause: cause, Lat: lat,
		})
	}
	live := !fr.doomed && fr.rq != nil && att.fstage == fr.stage && !fr.done[att.slot]
	slot, hedgeN := att.slot, att.hedgeN
	ol.freeRequest(att)
	if live {
		fr.outstanding[slot]--
		switch outcome {
		case fsubDone:
			if ol.cfg.hedge.Kind == HedgePctl {
				ol.fanLat.Add(lat)
			}
			ol.slotDone(fr, slot, hedgeN, now)
		case fsubTimeout, fsubShed:
			ol.maybeSlotFailed(fr, slot, outcome)
		}
	}
	ol.maybeFreeFanReq(fr)
}

// slotDone marks a slot complete (first completion wins; a winning
// hedge counts as a hedge win) and advances the stage when the
// aggregation rule is satisfied.
func (ol *openLoop) slotDone(fr *fanReq, slot, hedgeN int, now sim.Time) {
	fr.done[slot] = true
	fr.doneN++
	fr.finT = append(fr.finT, now)
	if hedgeN > 0 {
		ol.fanHedgeWins++
	}
	if fr.doneN >= fr.need {
		ol.stageSatisfied(fr, now)
	}
}

// maybeSlotFailed marks a slot failed once no attempt can complete it
// (nothing outstanding, no hedge armed) and dooms the request when the
// aggregation rule can no longer be met: "all" tolerates zero failed
// slots, quorum:K tolerates Width-K.
func (ol *openLoop) maybeSlotFailed(fr *fanReq, slot, outcome int) {
	if fr.doomed || fr.rq == nil || fr.done[slot] {
		return
	}
	if fr.outstanding[slot] > 0 || fr.pending[slot] > 0 {
		return
	}
	fr.failN++
	if fr.failN > ol.cfg.fan.Width-fr.need {
		ol.doom(fr, outcome)
	}
}

// doom settles a parent whose fan-out can no longer satisfy its
// aggregation rule. The parent settles immediately (the client learns
// now, and may retry); outstanding sibling attempts drain as cancelled
// the moment a handler touches them.
func (ol *openLoop) doom(fr *fanReq, outcome int) {
	fr.doomed = true
	rq := fr.rq
	fr.rq = nil
	out := outTimeoutFanout
	if outcome == fsubShed {
		out = outShedFanout
	}
	now := ol.m.Engine().Now()
	ol.settle(rq, out, sim.Duration(now-rq.arrived))
	ol.maybeFreeFanReq(fr)
}

// stageSatisfied fires when the aggregation rule holds: the request
// completes (last stage) or the next stage starts with a fresh deadline
// budget. Undone slots' outstanding attempts cancel lazily. Straggle is
// the gap between the median slot completion and the one that satisfied
// the rule — the price of waiting for the slowest needed subtask.
func (ol *openLoop) stageSatisfied(fr *fanReq, now sim.Time) {
	straggle := sim.Duration(now - fr.finT[(len(fr.finT)-1)/2])
	ol.fanStraggleSum += straggle
	ol.fanStages++
	if h := ol.m.Obs(); h.Enabled() {
		h.Emit(obs.Fanout{
			T: now, Action: "stage_done", Class: ol.cfg.classes[fr.class].name,
			Stage: fr.stage, Width: ol.cfg.fan.Width,
			Lat: sim.Duration(now - fr.stageStart), Straggle: straggle,
		})
	}
	if fr.stage == ol.cfg.fan.Stages-1 {
		rq := fr.rq
		fr.rq = nil
		lat := sim.Duration(now - rq.arrived)
		ol.cfg.classes[rq.class].acc.record(lat)
		ol.settle(rq, outCompleted, lat)
		ol.maybeFreeFanReq(fr)
		return
	}
	fr.stage++
	fr.resetStage()
	ol.startStage(fr)
}

// fanProbe is the fanout_conservation invariant: every issued subtask
// attempt is either settled in exactly one terminal outcome or still
// outstanding. Registered with the run's invariant.Checker and swept
// after every simulation event, faults included.
func (ol *openLoop) fanProbe() string {
	settled := ol.fanDone + ol.fanCancelled + ol.fanTimeout + ol.fanShed
	if ol.fanOutstanding < 0 || settled+ol.fanOutstanding != ol.fanIssued {
		return fmt.Sprintf("issued %d != done %d + cancelled %d + timeout %d + shed %d + outstanding %d",
			ol.fanIssued, ol.fanDone, ol.fanCancelled, ol.fanTimeout, ol.fanShed, ol.fanOutstanding)
	}
	return ""
}

// ---- Registered fan-out workloads -----------------------------------

// fanoutProfile is the serving shape of the fan-out presets: a
// single-class open-loop pool whose every admitted request fans out
// per the spec, with heavy-tailed subtask service so stragglers exist
// to hedge against.
type fanoutProfile struct {
	handlers   int
	requests   int // base arrivals at paper scale
	queueDepth int
	factor     float64 // offered load as a multiple of nominal capacity
	fan        FanoutSpec
	hedge      HedgeSpec
	service    sim.Duration // mean subtask service time
	cv         float64
	slo        sim.Duration
	timeout    sim.Duration // parent deadline, split across stages
	retries    int
	backoff    sim.Duration
}

// capacityRate returns the pool's nominal throughput in parent requests
// per second: handlers / (stages × width × mean subtask service).
func (p fanoutProfile) capacityRate() float64 {
	per := float64(p.fan.Stages) * float64(p.fan.Width) * float64(p.service)
	return float64(p.handlers) / per * float64(sim.Second)
}

func (p fanoutProfile) install(m *cpu.Machine, scale float64) {
	reqs := scaleCount(p.requests, scale, 50)
	sp := &ArrivalSpec{Kind: ArrPoisson, Rate: p.factor * p.capacityRate()}
	src, err := sp.Source()
	if err != nil {
		panic(fmt.Sprintf("workload: fanout arrival spec: %v", err))
	}
	// Admission caps the subtask backlog: the queue holds subtask
	// attempts, so the limit is expressed in handler multiples.
	adm, err := ParseAdmission(fmt.Sprintf("cap:%d", 6*p.handlers))
	if err != nil {
		panic(fmt.Sprintf("workload: fanout admission spec: %v", err))
	}
	fan := p.fan // copy: install must not mutate the registered template
	installOpenLoopPool(m, openLoopCfg{
		handlers:   p.handlers,
		total:      reqs,
		queueDepth: p.queueDepth,
		src:        src,
		adm:        adm,
		timeout:    p.timeout,
		maxRetries: p.retries,
		backoff:    p.backoff,
		fan:        &fan,
		hedge:      p.hedge,
		classes: []reqClass{{
			name: "fan", prio: 0, share: 1,
			svc: jitterCycles(m, p.service, p.cv),
			slo: p.slo,
			acc: &sloAccum{class: "fan", slo: p.slo},
		}},
		endToEnd: true,
	})
}

// referenceFanout is the preset the fanout/* workloads share; width,
// offered-load factor and hedge policy vary across the grid. Subtask
// service is heavy-tailed (cv 1.5) so one cold or unlucky subtask
// plausibly straggles an entire stage.
func referenceFanout(width int, factor float64, hedge string) fanoutProfile {
	hs := HedgeSpec{Kind: HedgeNone}
	if hedge != "none" {
		parsed, err := ParseHedgeSpec("hedge:after=" + hedge + ",max=1")
		if err != nil {
			panic(fmt.Sprintf("workload: fanout hedge %q: %v", hedge, err))
		}
		hs = *parsed
	}
	return fanoutProfile{
		handlers:   64,
		requests:   20000,
		queueDepth: 8192,
		factor:     factor,
		fan:        FanoutSpec{Width: width, Stages: 2},
		hedge:      hs,
		service:    250 * sim.Microsecond,
		cv:         1.5,
		slo:        8 * msec,
		timeout:    20 * msec,
		retries:    1,
		backoff:    2 * msec,
	}
}

// FanoutWidths, FanoutHedges and FanoutFactors enumerate the registered
// fan-out grid axes; the fanout experiment sweeps them against
// schedulers.
var (
	FanoutWidths  = []int{8, 16}
	FanoutHedges  = []string{"none", "p95"}
	FanoutFactors = []float64{0.7, 1.2}
)

// FanoutMixName returns the registered workload name for one grid cell,
// e.g. "fanout/w16-0.7-p95".
func FanoutMixName(width int, factor float64, hedge string) string {
	return fmt.Sprintf("fanout/w%d-%g-%s", width, factor, hedge)
}

func init() {
	for _, w := range FanoutWidths {
		for _, f := range FanoutFactors {
			for _, hg := range FanoutHedges {
				prof := referenceFanout(w, f, hg)
				register(&Workload{
					Name:         FanoutMixName(w, f, hg),
					Suite:        "fanout",
					PaperSeconds: 1,
					Install:      prof.install,
				})
			}
		}
	}
	// A quorum variant: 12-of-16 with fixed-delay hedges, the classic
	// "good enough" aggregation that tolerates slow shards outright.
	quorum := referenceFanout(16, 0.9, "none")
	quorum.fan.Quorum = 12
	quorum.hedge = HedgeSpec{Kind: HedgeFixed, After: msec, Max: 2}
	register(&Workload{
		Name:         "fanout/quorum",
		Suite:        "fanout",
		PaperSeconds: 1,
		Install:      quorum.install,
	})
}

// RegisterFanoutWorkload registers a custom fan-out serving workload
// (cmd/nestsim -fanout/-hedge) on the reference pool at the given
// offered-load factor.
func RegisterFanoutWorkload(name, fanSpec, hedgeSpec string, factor float64) error {
	fan, err := ParseFanoutSpec(fanSpec)
	if err != nil {
		return err
	}
	hs := &HedgeSpec{Kind: HedgeNone}
	if hedgeSpec != "" {
		if hs, err = ParseHedgeSpec(hedgeSpec); err != nil {
			return err
		}
	}
	if factor <= 0 {
		return fmt.Errorf("workload: fanout load factor %g must be positive", factor)
	}
	if _, err := ByName(name); err == nil {
		return fmt.Errorf("workload: %q already registered", name)
	}
	prof := referenceFanout(fan.Width, factor, "none")
	prof.fan, prof.hedge = *fan, *hs
	register(&Workload{
		Name:         name,
		Suite:        "fanout",
		PaperSeconds: 1,
		Install:      prof.install,
	})
	return nil
}
