package workload

import (
	"strings"
	"testing"

	"repro/internal/cfs"
	"repro/internal/cpu"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func runOn(t *testing.T, name string, spec *machine.Spec, scale float64) *metrics.Result {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatalf("ByName(%q): %v", name, err)
	}
	m := cpu.New(cpu.Config{Spec: spec, Gov: governor.Schedutil{}, Policy: cfs.Default(), Seed: 7})
	w.Install(m, scale)
	res := m.Run(0)
	res.Workload = name
	return res
}

func TestRegistryComplete(t *testing.T) {
	// The suites must carry exactly the paper's benchmark counts.
	counts := map[string]int{}
	for _, n := range Names() {
		w, _ := ByName(n)
		counts[w.Suite]++
	}
	want := map[string]int{
		"configure":   11,
		"dacapo":      21,
		"nas":         9,
		"phoronix":    27,
		"phoronix-bg": backgroundCount,
		"micro":       13,
		"server":      9,
		"multi":       1,
		"overload":    13,
		"fanout":      9,
	}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("suite %q has %d workloads, want %d", suite, counts[suite], n)
		}
	}
	if len(PhoronixAll()) != 222 {
		t.Errorf("Phoronix population = %d, want 222 (paper)", len(PhoronixAll()))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope/nothing"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSuiteOrdering(t *testing.T) {
	ws := Suite("configure")
	if len(ws) != 11 {
		t.Fatalf("Suite(configure) = %d entries", len(ws))
	}
	for _, w := range ws {
		if !strings.HasPrefix(w.Name, "configure/") {
			t.Fatalf("stray workload %q in configure suite", w.Name)
		}
	}
}

func TestEveryWorkloadRunsToCompletion(t *testing.T) {
	// Every registered (non-background) workload must install and finish
	// without deadlock at a tiny scale on a small machine.
	spec := machine.IntelXeon6130(2)
	for _, n := range Names() {
		w, _ := ByName(n)
		if w.Suite == "phoronix-bg" {
			continue // covered by sampling below
		}
		scale := 0.005
		if w.Suite == "micro" {
			scale = 0.002
		}
		res := runOn(t, n, spec, scale)
		if res.Custom["truncated"] != 0 {
			t.Errorf("%s: did not complete (deadlock or runaway)", n)
		}
		if res.Runtime <= 0 {
			t.Errorf("%s: zero runtime", n)
		}
	}
}

func TestBackgroundPopulationSample(t *testing.T) {
	spec := machine.IntelXeon6130(2)
	for i := 0; i < backgroundCount; i += 23 {
		n := PhoronixAll()[27+i]
		res := runOn(t, n, spec, 0.004)
		if res.Custom["truncated"] != 0 {
			t.Errorf("%s truncated", n)
		}
	}
}

func TestScaleShortensRuns(t *testing.T) {
	spec := machine.IntelXeon6130(2)
	small := runOn(t, "configure/gcc", spec, 0.02)
	large := runOn(t, "configure/gcc", spec, 0.08)
	if large.Runtime <= small.Runtime {
		t.Fatalf("scale 0.08 (%v) not longer than 0.02 (%v)", large.Runtime, small.Runtime)
	}
}

func TestPaperSecondsRoughlyMatchedAtScale(t *testing.T) {
	// At scale s the modelled runtime should be within 3x of
	// PaperSeconds*s for the configure suite (loose: the model is about
	// shape, not absolute time, but should not be wildly off).
	spec := machine.IntelXeon5218()
	for _, n := range []string{"configure/erlang", "configure/llvm_ninja", "configure/gcc"} {
		w, _ := ByName(n)
		res := runOn(t, n, spec, 0.04)
		want := w.PaperSeconds * 0.04
		got := res.Runtime.Seconds()
		if got < want/3 || got > want*3 {
			t.Errorf("%s: runtime %.3fs, paper-scaled %.3fs (off more than 3x)", n, got, want)
		}
	}
}

func TestConfigureNamesMatchFigureOrder(t *testing.T) {
	names := ConfigureNames()
	if names[0] != "erlang" || names[len(names)-1] != "php" {
		t.Fatalf("figure order broken: %v", names)
	}
}

func TestPhoronixDescriptions(t *testing.T) {
	for _, n := range PhoronixNamed() {
		if PhoronixDescription(n) == "" {
			t.Errorf("test %q has no Table 5 description", n)
		}
	}
	if PhoronixDescription("nope") != "" {
		t.Error("unknown test has a description")
	}
}

func TestMultiAppRecordsPerAppTimes(t *testing.T) {
	spec := machine.IntelXeon6130(2)
	res := runOn(t, "multi/zstd+libgav1", spec, 0.01)
	if res.Custom["zstd_s"] <= 0 || res.Custom["libgav1_s"] <= 0 {
		t.Fatalf("per-app completion times missing: %v", res.Custom)
	}
}

func TestHackbenchSchedulerBound(t *testing.T) {
	// Most of hackbench's events must be wakeups, not timer sleeps: the
	// workload exists to stress placement.
	spec := machine.IntelXeon6130(2)
	res := runOn(t, "micro/hackbench", spec, 0.002)
	if res.Counters.Wakeups < res.Counters.Forks {
		t.Fatalf("hackbench not wakeup-dominated: %d wakeups, %d forks",
			res.Counters.Wakeups, res.Counters.Forks)
	}
}

func TestNASUsesAllCores(t *testing.T) {
	spec := machine.IntelXeon6130(2)
	w, _ := ByName("nas/ep.C")
	m := cpu.New(cpu.Config{Spec: spec, Gov: governor.Performance{}, Policy: cfs.Default(), Seed: 3})
	tr := metrics.NewTrace(0, 2*sim.Second)
	m2 := cpu.New(cpu.Config{Spec: spec, Gov: governor.Performance{}, Policy: cfs.Default(), Seed: 3, Trace: tr})
	_ = m
	w.Install(m2, 0.02)
	m2.Run(0)
	if used := len(tr.CoresUsed()); used < spec.Topo.NumCores()*9/10 {
		t.Fatalf("NAS used only %d of %d cores", used, spec.Topo.NumCores())
	}
}
