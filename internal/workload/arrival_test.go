package workload

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseArrivalSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"poisson:rate=2500/s",
		"poisson:rate=0.5/s",
		"mmpp:hi=100000/s,lo=2000/s,on=4ms,off=12ms",
		"mmpp:hi=5000/s,lo=0/s,on=1ms,off=250us",
		"diurnal:peak=80000/s,trough=1000/s,period=200ms",
		"diurnal:peak=10/s,trough=0/s,period=2s",
		"trace:arrivals.jsonl",
	} {
		sp, err := ParseArrivalSpec(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := sp.String(); got != s {
			t.Errorf("canonical form of %q is %q", s, got)
		}
		sp2, err := ParseArrivalSpec(sp.String())
		if err != nil || !reflect.DeepEqual(sp, sp2) {
			t.Errorf("round trip of %q changed the spec: %+v != %+v (%v)", s, sp, sp2, err)
		}
	}
}

func TestParseArrivalSpecDefaults(t *testing.T) {
	sp, err := ParseArrivalSpec("mmpp:hi=1000/s,lo=100/s")
	if err != nil {
		t.Fatal(err)
	}
	if sp.On != 4*msec || sp.Off != 12*msec {
		t.Errorf("mmpp dwell defaults: on=%v off=%v", sp.On, sp.Off)
	}
}

func TestParseArrivalSpecRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"poisson",
		"poisson:rate=10",           // missing /s
		"poisson:rate=-1/s",         // negative
		"poisson:rate=0/s",          // zero main rate
		"poisson:rate=NaN/s",        // NaN
		"poisson:rate=+Inf/s",       // Inf
		"poisson:rate=2e9/s",        // above maxRate
		"poisson:rate=1e-9/s",       // below minRate
		"poisson:rate=1/s,rate=2/s", // duplicate key
		"poisson:burst=1/s",         // unknown key
		"mmpp:hi=100/s",             // missing lo
		"mmpp:hi=10/s,lo=100/s",     // lo > hi
		"mmpp:hi=1/s,lo=0/s,on=0ms", // non-positive dwell
		"diurnal:peak=10/s,trough=20/s,period=1s", // trough > peak
		"diurnal:peak=10/s,trough=1/s",            // missing period
		"diurnal:peak=10/s,trough=1/s,period=2h",  // bad unit
		"trace:",                                  // missing path
		"trace:a,b",                               // path with comma
		"uniform:rate=1/s",                        // unknown kind
	} {
		if _, err := ParseArrivalSpec(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestArrivalMeanRate(t *testing.T) {
	cases := []struct {
		spec string
		want float64
	}{
		{"poisson:rate=1000/s", 1000},
		// (4ms*2500 + 12ms*500) / 16ms = 1000
		{"mmpp:hi=2500/s,lo=500/s,on=4ms,off=12ms", 1000},
		{"diurnal:peak=1500/s,trough=500/s,period=100ms", 1000},
	}
	for _, c := range cases {
		sp, err := ParseArrivalSpec(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := sp.MeanRate(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: MeanRate = %g, want %g", c.spec, got, c.want)
		}
	}
}

// measureRate drives a source for n arrivals and returns the empirical
// rate in requests per second.
func measureRate(t *testing.T, src ArrivalSource, n int) float64 {
	t.Helper()
	r := sim.NewRand(42)
	var total sim.Duration
	for i := 0; i < n; i++ {
		gap, _, ok := src.Next(r)
		if !ok {
			t.Fatal("source exhausted early")
		}
		if gap < 0 {
			t.Fatal("negative gap")
		}
		total += gap
	}
	return float64(n) / total.Seconds()
}

func TestSourcesMatchMeanRate(t *testing.T) {
	for _, spec := range []string{
		"poisson:rate=50000/s",
		"mmpp:hi=125000/s,lo=25000/s,on=4ms,off=12ms", // mean 50000/s
		"diurnal:peak=90000/s,trough=10000/s,period=50ms",
	} {
		sp, err := ParseArrivalSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		src, err := sp.Source()
		if err != nil {
			t.Fatal(err)
		}
		got := measureRate(t, src, 50000)
		want := sp.MeanRate()
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("%s: empirical rate %.0f/s, want %.0f/s ±10%%", spec, got, want)
		}
	}
}

func TestMMPPBurstiness(t *testing.T) {
	// An on/off process at the same mean as a Poisson process must show a
	// higher coefficient of variation of interarrival gaps.
	cv := func(spec string) float64 {
		sp, _ := ParseArrivalSpec(spec)
		src, err := sp.Source()
		if err != nil {
			t.Fatal(err)
		}
		r := sim.NewRand(9)
		var sum, sumSq float64
		const n = 40000
		for i := 0; i < n; i++ {
			gap, _, _ := src.Next(r)
			g := float64(gap)
			sum += g
			sumSq += g * g
		}
		mean := sum / n
		return math.Sqrt(sumSq/n-mean*mean) / mean
	}
	pois := cv("poisson:rate=50000/s")
	mmpp := cv("mmpp:hi=250000/s,lo=5000/s,on=2ms,off=8ms")
	if mmpp <= pois*1.2 {
		t.Errorf("MMPP cv %.2f not clearly burstier than Poisson cv %.2f", mmpp, pois)
	}
}

func TestTraceRoundTripAndReplay(t *testing.T) {
	entries := []TraceEntry{
		{T: 0, Class: "web"},
		{T: 1500, Class: "kv"},
		{T: 1500}, // simultaneous, classless
		{T: 2 * sim.Time(sim.Millisecond), Class: "script"},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, entries); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	if strings.Contains(wire, " ") || !strings.HasSuffix(wire, "\n") {
		t.Errorf("trace wire form not compact JSONL: %q", wire)
	}
	sp := &ArrivalSpec{Path: "t.jsonl"}
	if err := sp.LoadTrace(strings.NewReader(wire)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp.Trace, entries) {
		t.Fatalf("trace round trip changed entries: %+v", sp.Trace)
	}
	src, err := sp.Source()
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Time
	for i, want := range entries {
		gap, class, ok := src.Next(nil)
		if !ok {
			t.Fatalf("entry %d: source exhausted", i)
		}
		now += sim.Time(gap)
		if now != want.T || class != want.Class {
			t.Errorf("entry %d: replayed (t=%d, %q), want (t=%d, %q)", i, now, class, want.T, want.Class)
		}
	}
	if _, _, ok := src.Next(nil); ok {
		t.Error("finite trace did not exhaust")
	}
}

func TestLoadTraceRejectsBadInput(t *testing.T) {
	for name, wire := range map[string]string{
		"not json":   "{\"t_ns\": }\n",
		"regressing": "{\"t_ns\":100}\n{\"t_ns\":50}\n",
		"negative":   "{\"t_ns\":-1}\n",
	} {
		sp := &ArrivalSpec{}
		if err := sp.LoadTrace(strings.NewReader(wire)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestUnloadedTraceSourceFails(t *testing.T) {
	sp, err := ParseArrivalSpec("trace:missing.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Source(); err == nil {
		t.Error("Source succeeded without loaded entries")
	}
}
