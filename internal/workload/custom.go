package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/sim"
)

// CustomSpec defines a workload from data (JSON), so downstream users
// can model their own applications without writing Go. A workload is a
// set of task groups; each group's tasks iterate compute/wait cycles,
// optionally synchronising on a shared barrier, and a group can instead
// be a dispatcher forking short-lived children (the configure shape).
type CustomSpec struct {
	// Name registers the workload as "custom/<Name>".
	Name string `json:"name"`
	// Groups are the task populations.
	Groups []CustomGroup `json:"groups"`
}

// CustomGroup is one population of identical tasks.
type CustomGroup struct {
	// Name labels the tasks (for traces).
	Name string `json:"name"`
	// Count is the number of tasks (default 1).
	Count int `json:"count"`
	// Iterations per task at scale 1 (default 100).
	Iterations int `json:"iterations"`
	// ComputeUS is the mean compute per iteration in microseconds at
	// nominal frequency; ComputeCV its log-normal spread.
	ComputeUS float64 `json:"compute_us"`
	ComputeCV float64 `json:"compute_cv"`
	// SleepUS is the mean wait between iterations (0 = none);
	// SleepCV its spread. ScaleSleep makes waits track progress, the
	// lock-wait model.
	SleepUS    float64 `json:"sleep_us"`
	SleepCV    float64 `json:"sleep_cv"`
	ScaleSleep bool    `json:"scale_sleep"`
	// Barrier names a barrier shared by every group using the same
	// name; all members synchronise per iteration. ActiveWait selects
	// OpenMP-style busy waiting.
	Barrier    string `json:"barrier"`
	ActiveWait bool   `json:"active_wait"`
	// StartIdleUS delays each task's first iteration.
	StartIdleUS float64 `json:"start_idle_us"`
	// ForkChildren turns the group into dispatchers: each iteration
	// forks this many children running ComputeUS of work and waits for
	// them (the configure/zstd-batch shape). Sleep fields then model
	// dispatcher think time.
	ForkChildren int `json:"fork_children"`
}

// Validate checks the spec for obvious mistakes.
func (s *CustomSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("custom workload needs a name")
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("custom workload %q has no groups", s.Name)
	}
	for i, g := range s.Groups {
		if g.ComputeUS < 0 || g.SleepUS < 0 || g.StartIdleUS < 0 {
			return fmt.Errorf("group %d: negative durations", i)
		}
		if g.ComputeUS == 0 && g.ForkChildren == 0 {
			return fmt.Errorf("group %d: no compute and no forked children", i)
		}
		if g.Count < 0 || g.Iterations < 0 || g.ForkChildren < 0 {
			return fmt.Errorf("group %d: negative counts", i)
		}
		if g.Barrier != "" && g.ForkChildren > 0 {
			return fmt.Errorf("group %d: barrier and fork_children are exclusive", i)
		}
	}
	return nil
}

// build installs the spec's tasks on m.
func (s *CustomSpec) build(m *cpu.Machine, scale float64) {
	us := func(v float64) sim.Duration { return sim.Duration(v * float64(sim.Microsecond)) }
	barriers := map[string]*proc.Barrier{}
	// Pre-size barriers: parties = total count over groups sharing it.
	for _, g := range s.Groups {
		if g.Barrier == "" {
			continue
		}
		count := g.Count
		if count == 0 {
			count = 1
		}
		if b, ok := barriers[g.Barrier]; ok {
			b.Parties += count
		} else {
			nb := proc.NewBarrier(g.Barrier, count)
			nb.ActiveWait = g.ActiveWait
			barriers[g.Barrier] = nb
		}
	}

	var actions []proc.Action
	for gi := range s.Groups {
		g := s.Groups[gi]
		count := g.Count
		if count == 0 {
			count = 1
		}
		iters := g.Iterations
		if iters == 0 {
			iters = 100
		}
		iters = scaleCount(iters, scale, 5)
		work := jitterCycles(m, us(g.ComputeUS), g.ComputeCV)
		nominal := m.Spec().Nominal

		mk := func() proc.Behavior {
			left := iters
			started := g.StartIdleUS == 0
			state := 0
			var burstStart sim.Time
			var burstIdeal sim.Duration
			var pending []proc.Action
			return func(t *proc.Task, r *sim.Rand) proc.Action {
				if !started {
					started = true
					return proc.Sleep{D: us(g.StartIdleUS)}
				}
				if len(pending) > 0 {
					a := pending[0]
					pending = pending[1:]
					return a
				}
				if left <= 0 {
					return proc.Exit{}
				}
				if g.ForkChildren > 0 {
					left--
					for i := 0; i < g.ForkChildren; i++ {
						pending = append(pending, proc.Fork{
							Name:     g.Name + "-kid",
							Behavior: proc.Once(proc.Compute{Cycles: work(r)}),
						})
					}
					pending = append(pending, proc.WaitChildren{})
					if g.SleepUS > 0 {
						pending = append(pending, proc.Sleep{D: r.LogNormalDur(us(g.SleepUS), maxf(g.SleepCV, 0.2))})
					}
					a := pending[0]
					pending = pending[1:]
					return a
				}
				switch state {
				case 0:
					state = 1
					c := work(r)
					burstStart = t.Now
					burstIdeal = proc.TimeFor(c, nominal)
					return proc.Compute{Cycles: c}
				default:
					state = 0
					left--
					if b := barriers[g.Barrier]; b != nil {
						return proc.BarrierWait{B: b}
					}
					if g.SleepUS <= 0 {
						if left <= 0 {
							return proc.Exit{}
						}
						state = 1
						c := work(r)
						burstStart = t.Now
						burstIdeal = proc.TimeFor(c, nominal)
						return proc.Compute{Cycles: c}
					}
					d := r.LogNormalDur(us(g.SleepUS), maxf(g.SleepCV, 0.2))
					if g.ScaleSleep && burstIdeal > 0 {
						ratio := float64(t.Now-burstStart) / float64(burstIdeal)
						if ratio < 0.4 {
							ratio = 0.4
						}
						if ratio > 3 {
							ratio = 3
						}
						d = sim.Duration(float64(d) * (0.25 + 0.75*ratio))
					}
					return proc.Sleep{D: d}
				}
			}
		}
		for i := 0; i < count; i++ {
			actions = append(actions, proc.Fork{Name: fmt.Sprintf("%s-%d", g.Name, i), Behavior: mk()})
		}
	}
	actions = append(actions, proc.WaitChildren{})
	m.Spawn("custom-main", proc.Script(actions...))
}

// LoadCustom parses a JSON CustomSpec and returns an installable
// workload (not registered globally).
func LoadCustom(r io.Reader) (*Workload, error) {
	var spec CustomSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("custom workload: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Workload{
		Name:  "custom/" + spec.Name,
		Suite: "custom",
		Install: func(m *cpu.Machine, scale float64) {
			spec.build(m, scale)
		},
	}, nil
}

// RegisterCustom parses and registers a custom workload so it is
// addressable by name in the harness. Registering a duplicate name
// fails.
func RegisterCustom(r io.Reader) (*Workload, error) {
	w, err := LoadCustom(r)
	if err != nil {
		return nil, err
	}
	if _, exists := registry[w.Name]; exists {
		return nil, fmt.Errorf("workload %q already registered", w.Name)
	}
	return register(w), nil
}
