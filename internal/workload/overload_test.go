package workload

import (
	"encoding/json"
	"testing"

	"repro/internal/cfs"
	nest "repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestOverloadConservation holds the pool to the attempt lifecycle
// contract: every delivered attempt terminates in exactly one of
// completed, timed out or shed, so the counters add up under every
// policy and load factor.
func TestOverloadConservation(t *testing.T) {
	spec := machine.IntelXeon6130(2)
	for _, pol := range OverloadPolicies {
		for _, f := range OverloadFactors {
			name := OverloadMixName(f, pol)
			res := runOn(t, name, spec, 0.05)
			offered := res.Custom["ovl_offered"]
			sum := res.Custom["ovl_completed"] + res.Custom["ovl_timeout"] + res.Custom["ovl_shed"]
			if offered == 0 || offered != sum {
				t.Errorf("%s: offered %g != completed+timeout+shed %g", name, offered, sum)
			}
			if res.Custom["truncated"] != 0 {
				t.Errorf("%s: run truncated", name)
			}
			// Retry amplification is bounded by 1 + maxRetries.
			if amp := res.Custom["ovl_amp"]; amp < 1 || amp > 3 {
				t.Errorf("%s: retry amplification %g outside [1, 3]", name, amp)
			}
		}
	}
}

// TestCodelBeatsNoAdmission is the graceful-degradation headline: past
// saturation, CoDel-style sojourn shedding must deliver strictly more
// goodput (deadline-met completions per second) than no admission
// control, where the queue holds every request just long enough to miss
// its deadline and client retries amplify the load.
func TestCodelBeatsNoAdmission(t *testing.T) {
	spec := machine.IntelXeon6130(2)
	for _, f := range []float64{1.5, 2.0} {
		none := runOn(t, OverloadMixName(f, "none"), spec, 0.2)
		codel := runOn(t, OverloadMixName(f, "codel"), spec, 0.2)
		gNone, gCodel := none.Custom["ovl_goodput"], codel.Custom["ovl_goodput"]
		if gCodel <= gNone {
			t.Errorf("factor %g: codel goodput %.0f not above none %.0f", f, gCodel, gNone)
		}
		// The collapse mechanism: under "none" most of the offered load
		// times out; under codel timeouts are rare because shedding keeps
		// the queue short.
		if none.Custom["ovl_timeout"] <= codel.Custom["ovl_timeout"] {
			t.Errorf("factor %g: none timeouts %g not above codel %g",
				f, none.Custom["ovl_timeout"], codel.Custom["ovl_timeout"])
		}
	}
}

// TestPriorityShedding checks graceful degradation order under the
// graded queue cap: the "script" class must shed a larger fraction of
// its attempts than "kv", which in turn sheds more than "web".
func TestPriorityShedding(t *testing.T) {
	m := cpu.New(cpu.Config{Spec: machine.IntelXeon6130(2), Gov: governor.Schedutil{}, Policy: cfs.Default(), Seed: 7})
	prof := referenceOverload(2.0, "cap")
	ol := installProfile(t, m, prof, 3000)
	if res := m.Run(0); res.Custom["truncated"] != 0 {
		t.Fatal("run truncated")
	}
	frac := make([]float64, len(ol.byClass))
	for i, st := range ol.byClass {
		if st.offered == 0 {
			t.Fatalf("class %d saw no attempts", i)
		}
		frac[i] = float64(st.shed) / float64(st.offered)
	}
	// Classes are ordered web, kv, script (priority 0, 1, 2).
	if !(frac[2] > frac[1] && frac[1] > frac[0]) {
		t.Errorf("shed fractions not graded by priority: web %.3f, kv %.3f, script %.3f",
			frac[0], frac[1], frac[2])
	}
}

// installProfile installs prof with an explicit base-arrival budget and
// returns the live pool for white-box inspection.
func installProfile(t *testing.T, m *cpu.Machine, prof overloadProfile, total int) *openLoop {
	t.Helper()
	src, err := prof.arrivalSpec().Source()
	if err != nil {
		t.Fatal(err)
	}
	adm, err := ParseAdmission(prof.admissionSpec())
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]reqClass, len(prof.classes))
	for i, cl := range prof.classes {
		classes[i] = reqClass{
			name: cl.name, prio: cl.prio, share: cl.share,
			svc: jitterCycles(m, cl.service, cl.cv),
			slo: cl.slo,
			acc: &sloAccum{class: cl.name, slo: cl.slo, quiet: true},
		}
	}
	return installOpenLoopPool(m, openLoopCfg{
		handlers:   prof.handlers,
		total:      total,
		queueDepth: prof.queueDepth,
		src:        src,
		adm:        adm,
		timeout:    prof.timeout,
		maxRetries: prof.retries,
		backoff:    prof.backoff,
		classes:    classes,
		endToEnd:   true,
	})
}

// TestOverloadReplayByteIdentical reruns the bursty retrying cell with
// the same seed and demands byte-identical encoded results: MMPP phase
// dwells, backoff jitter and shedding decisions must all come off the
// seeded RNGs, never host state.
func TestOverloadReplayByteIdentical(t *testing.T) {
	stamp := func() []byte {
		res := runOn(t, OverloadMixName(1.5, "codel"), machine.IntelXeon6130(2), 0.05)
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := stamp(), stamp()
	if string(a) != string(b) {
		t.Errorf("same-seed replays diverged:\n%s\n%s", a, b)
	}
}

// TestOverloadSchedulersShareArrivals checks the pump/scheduler split:
// the base arrival process is drawn from its own seeded RNG, so two
// different schedulers at the same seed must face the same offered base
// load (offered minus retries), even though retries and outcomes then
// legitimately diverge.
func TestOverloadSchedulersShareArrivals(t *testing.T) {
	base := func(scheduler string) float64 {
		w, err := ByName(OverloadMixName(2, "token"))
		if err != nil {
			t.Fatal(err)
		}
		var pol sched.Policy = cfs.Default()
		if scheduler == "nest" {
			pol = nest.Default()
		}
		m := cpu.New(cpu.Config{Spec: machine.IntelXeon6130(2), Gov: governor.Schedutil{}, Policy: pol, Seed: 11})
		w.Install(m, 0.05)
		res := m.Run(0)
		return res.Custom["ovl_offered"] - res.Custom["ovl_retries"]
	}
	if c, n := base("cfs"), base("nest"); c != n {
		t.Errorf("base arrivals differ across schedulers: cfs %g, nest %g", c, n)
	}
}

// TestQueueDepthShedsWhenFull bounds the queue: a tiny QueueDepth on a
// saturating profile must shed at the full queue and record the high
// watermark at the bound.
func TestQueueDepthShedsWhenFull(t *testing.T) {
	m := cpu.New(cpu.Config{Spec: machine.IntelXeon6130(2), Gov: governor.Schedutil{}, Policy: cfs.Default(), Seed: 7})
	prof := referenceOverload(2.0, "none")
	prof.queueDepth = 32
	prof.retries = 0
	ol := installProfile(t, m, prof, 2000)
	if res := m.Run(0); res.Custom["truncated"] != 0 {
		t.Fatal("run truncated")
	}
	if ol.shedFull == 0 {
		t.Error("full queue never shed")
	}
	if hwm := ol.ch.HighWater; hwm != 32 {
		t.Errorf("queue high watermark %d, want the bound 32", hwm)
	}
}

func TestRegisterTraceWorkload(t *testing.T) {
	entries := make([]TraceEntry, 400)
	for i := range entries {
		entries[i] = TraceEntry{T: sim.Time(i) * 50_000} // one every 50us
	}
	name := "trace/test-steady"
	if err := RegisterTraceWorkload(name, entries, "codel"); err != nil {
		t.Fatal(err)
	}
	if err := RegisterTraceWorkload(name, entries, "codel"); err == nil {
		t.Error("duplicate registration accepted")
	}
	res := runOn(t, name, machine.IntelXeon6130(2), 1)
	if res.Custom["truncated"] != 0 {
		t.Error("trace run truncated")
	}
	if got := res.Custom["ovl_offered"] - res.Custom["ovl_retries"]; got != 400 {
		t.Errorf("base arrivals %g, want the full trace (400)", got)
	}
}
