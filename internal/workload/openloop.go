package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/proc"
	"repro/internal/sim"
)

// reqClass is one request class served by an open-loop pool. Priority 0
// is the highest (shed last); service cycles are drawn per request from
// the handler's seeded RNG.
type reqClass struct {
	name  string
	prio  int
	share float64
	svc   func(*sim.Rand) int64
	slo   sim.Duration
	acc   *sloAccum
}

// request is one delivery attempt flowing through the open-loop server.
// Requests are pooled on the owning openLoop: taken at arrival or retry,
// recycled when the attempt settles, so sustained load allocates no
// request structs.
type request struct {
	ol       *openLoop
	class    int // index into openLoop.classes
	attempt  int // 0 = first try, incremented per client retry
	arrived  sim.Time
	deadline sim.Time // 0 = no deadline
	enqueued sim.Time
	// fan marks a subtask attempt of a fan-out parent (fanout.go):
	// slot/fstage locate it in the fan, hedgeN numbers duplicates
	// (0 = the slot's primary attempt).
	fan      *fanReq
	slot     int
	fstage   int
	hedgeN   int
	nextFree *request
}

// RunAt implements sim.Runner: a retry backoff timer expires and the
// attempt is delivered.
func (rq *request) RunAt(now sim.Time) { rq.ol.deliver(rq) }

// newRequest takes a request from the pool.
//
//pool:get
func (ol *openLoop) newRequest(class, attempt int) *request {
	rq := ol.reqFree
	if rq == nil {
		rq = &request{ol: ol}
	} else {
		ol.reqFree = rq.nextFree
		rq.nextFree = nil
	}
	rq.class, rq.attempt = class, attempt
	rq.arrived, rq.deadline, rq.enqueued = 0, 0, 0
	rq.fan, rq.slot, rq.fstage, rq.hedgeN = nil, 0, 0, 0
	return rq
}

// freeRequest returns a settled request to the pool.
//
//pool:put
func (ol *openLoop) freeRequest(rq *request) {
	rq.nextFree = ol.reqFree
	ol.reqFree = rq
}

// pumpRunner is the arrival pump's persistent engine callback: exactly
// one pump event is outstanding at a time, carrying the trace-supplied
// class name (if any) in pendingClass.
type pumpRunner struct{ ol *openLoop }

// RunAt implements sim.Runner: one base arrival lands.
func (p *pumpRunner) RunAt(now sim.Time) {
	ol := p.ol
	ol.delivered++
	ol.deliver(ol.newRequest(ol.classIndex(ol.pendingClass), 0))
	ol.scheduleNextArrival()
}

// Attempt outcomes. Every delivered attempt terminates in exactly one:
// completed (served within its deadline), timed out (expired in queue,
// or served too late), or shed (admission reject, full queue, or a
// CoDel-style drop at dequeue). The conservation test in
// overload_test.go holds the workload to that.
const (
	outCompleted = iota
	outTimeoutQueue
	outTimeoutServed
	outShedAdmission
	outShedFull
	outShedCodel
	// Fan-out parents (fanout.go): the request was doomed because its
	// aggregation rule became unsatisfiable — a needed subtask slot
	// blew its stage deadline budget, or was shed with no hedge left.
	outTimeoutFanout
	outShedFanout
)

// outName maps outcomes to the obs Overload event's action strings.
var outName = [...]string{
	outCompleted:     "completed",
	outTimeoutQueue:  "timeout_queue",
	outTimeoutServed: "timeout_served",
	outShedAdmission: "shed_admission",
	outShedFull:      "shed_full",
	outShedCodel:     "shed_codel",
	outTimeoutFanout: "timeout_fanout",
	outShedFanout:    "shed_fanout",
}

// openLoopCfg parameterises an open-loop serving pool.
type openLoopCfg struct {
	handlers   int
	total      int // base arrivals to generate (traces may end earlier)
	queueDepth int
	src        ArrivalSource
	adm        admission
	timeout    sim.Duration // per-attempt deadline; 0 = none
	maxRetries int
	backoff    sim.Duration // retry backoff base (doubles per attempt)
	classes    []reqClass
	// fan enables the fan-out request lifecycle (fanout.go): admitted
	// parents spawn fan.Width subtask attempts per stage instead of
	// entering the queue themselves; hedge is the duplicate-issue
	// policy for straggling slots.
	fan   *FanoutSpec
	hedge HedgeSpec
	// endToEnd selects what SLO accounting measures: queue wait plus
	// service (the overload suite) or service only (the classic §5.6
	// server profiles, preserving their semantics).
	endToEnd bool
}

// perClass is the per-class attempt accounting.
type perClass struct {
	offered, completed, timedOut, shed, retries int64
}

// openLoop drives an open-loop serving pool: an engine-scheduled
// arrival pump (never a task, so the offered load cannot be throttled
// by scheduling — that would quietly turn the source closed-loop), an
// admission policy at the bounded request queue, a handler pool, and a
// client model with deadlines and retry/backoff.
//
// Determinism: the pump draws from its own sim.Rand (seeded from the
// run seed), so the base arrival stream is identical across schedulers
// and policies at the same seed; the client RNG (backoff jitter) is
// separate so retries — which legitimately depend on system behavior —
// do not perturb base arrivals. Handlers draw service times from the
// machine RNG as all workloads do.
type openLoop struct {
	cfg openLoopCfg
	m   *cpu.Machine
	ch  *proc.Chan
	// queue holds admitted requests in arrival order; entries pair 1:1
	// with messages in ch (nil entries are shutdown sentinels).
	queue  []*request
	arrRng *sim.Rand
	cliRng *sim.Rand

	pump         pumpRunner
	pendingClass string   // class name for the outstanding pump event
	reqFree      *request //own:engine request free-list

	delivered int  // base arrivals delivered so far
	baseDone  bool // the pump has finished
	open      int  // attempt chains not yet terminal
	sentinels bool

	// Attempt accounting (aggregate and per class).
	offered, completed, timedOut, shed, retries int64
	shedAdmission, shedFull, shedCodel          int64
	timeoutQueue, timeoutServed                 int64
	timeoutFanout, shedFanout                   int64
	byClass                                     []perClass

	// Fan-out state (fanout.go): record pools, the completed-subtask
	// latency histogram feeding percentile hedges, and subtask-attempt
	// conservation accounting (issued == terminal + outstanding,
	// asserted by the fanout_conservation invariant probe).
	fanFree                          *fanReq     //own:engine
	htFree                           *hedgeTimer //own:engine
	fanLat                           metrics.LatHist
	fanIssued, fanDone, fanCancelled int64
	fanTimeout, fanShed              int64
	fanHedges, fanHedgeWins          int64
	fanOutstanding                   int64
	fanStraggleSum                   sim.Duration
	fanStages                        int64
}

// installOpenLoopPool wires the pool into the machine: handlers under a
// "server-main" root, the arrival pump on the engine, SLO accounting
// and overload customs published when the root exits.
func installOpenLoopPool(m *cpu.Machine, cfg openLoopCfg) *openLoop {
	ol := &openLoop{
		cfg:     cfg,
		m:       m,
		ch:      proc.NewChan("requests", cfg.queueDepth),
		arrRng:  sim.NewRand(m.Result().Seed ^ 0x61727276616c2121), // "arrval!!"
		cliRng:  sim.NewRand(m.Result().Seed ^ 0x636c69656e742121), // "client!!"
		byClass: make([]perClass, len(cfg.classes)),
	}
	ol.pump = pumpRunner{ol: ol}
	var actions []proc.Action
	for i := 0; i < cfg.handlers; i++ {
		actions = append(actions, proc.Fork{Name: fmt.Sprintf("handler-%d", i), Behavior: ol.handler()})
	}
	actions = append(actions, proc.WaitChildren{})
	m.Spawn("server-main", proc.Script(actions...))
	for _, cl := range cfg.classes {
		cl.acc.finishOn(m, "server-main")
	}
	if cfg.fan != nil {
		if chk := m.Checker(); chk != nil {
			chk.RegisterProbe("fanout_conservation", ol.fanProbe)
		}
	}
	ol.finishOn()
	ol.scheduleNextArrival()
	return ol
}

// scheduleNextArrival draws the gap to the next base arrival and posts
// it; when the source is exhausted the pump retires.
func (ol *openLoop) scheduleNextArrival() {
	if ol.cfg.total > 0 && ol.delivered >= ol.cfg.total {
		ol.pumpDone()
		return
	}
	gap, class, ok := ol.cfg.src.Next(ol.arrRng)
	if !ok {
		ol.pumpDone()
		return
	}
	// The class-mix draw (classIndex) stays at delivery time, after the
	// gap elapses, preserving the arrival RNG's draw order exactly as
	// the pre-pooling closure did.
	ol.pendingClass = class
	ol.m.Engine().PostRunAfter(gap, &ol.pump)
}

func (ol *openLoop) pumpDone() {
	ol.baseDone = true
	ol.maybeShutdown()
}

// classIndex resolves a trace-supplied class name, or draws from the
// configured mix.
func (ol *openLoop) classIndex(name string) int {
	if name != "" {
		for i := range ol.cfg.classes {
			if ol.cfg.classes[i].name == name {
				return i
			}
		}
	}
	if len(ol.cfg.classes) == 1 {
		return 0
	}
	f := ol.arrRng.Float64()
	acc := 0.0
	for i := range ol.cfg.classes {
		acc += ol.cfg.classes[i].share
		if f < acc {
			return i
		}
	}
	return len(ol.cfg.classes) - 1
}

// deliver runs one attempt through admission into the queue. Called
// from engine context (arrival pump, retry timers).
func (ol *openLoop) deliver(rq *request) {
	now := ol.m.Engine().Now()
	rq.arrived = now
	if ol.cfg.timeout > 0 {
		rq.deadline = now + sim.Time(ol.cfg.timeout)
	}
	if rq.attempt == 0 {
		ol.open++
	}
	ol.offered++
	ol.byClass[rq.class].offered++
	cl := &ol.cfg.classes[rq.class]
	if !ol.cfg.adm.admit(now, cl.prio, len(ol.queue)) {
		ol.settle(rq, outShedAdmission, 0)
		return
	}
	if ol.cfg.fan != nil {
		// Fan-out parents never occupy the queue themselves: admission
		// is request-level, then the stage's subtask attempts carry the
		// work (and the queue entries) from here.
		ol.startFanout(rq)
		return
	}
	if !ol.m.InjectSend(ol.ch, false) {
		if h := ol.m.Obs(); h.Enabled() {
			h.Count("server.queue_full", 1)
		}
		ol.settle(rq, outShedFull, 0)
		return
	}
	rq.enqueued = now
	ol.queue = append(ol.queue, rq)
}

// pop removes the head request (nil = shutdown sentinel).
func (ol *openLoop) pop() (*request, bool) {
	if len(ol.queue) == 0 {
		return nil, false
	}
	rq := ol.queue[0]
	ol.queue[0] = nil
	ol.queue = ol.queue[1:]
	return rq, true
}

// handler returns one pool worker: receive, shed/expire or serve,
// settle, repeat — until the shutdown sentinel.
func (ol *openLoop) handler() proc.Behavior {
	const (
		stRecv = iota
		stPopped
		stServed
	)
	state := stRecv
	var cur *request
	var svcStart sim.Time
	return func(t *proc.Task, r *sim.Rand) proc.Action {
		for {
			switch state {
			case stRecv:
				state = stPopped
				return proc.Recv{Ch: ol.ch}
			case stPopped:
				rq, ok := ol.pop()
				if !ok || rq == nil {
					return proc.Exit{} // shutdown sentinel
				}
				now := t.Now
				if rq.fan != nil {
					// Subtask attempt: cancellation and the stage
					// deadline replace CoDel-style dequeue drops.
					if ol.subAtDequeue(rq, now) {
						state = stRecv
						continue
					}
					cur, svcStart = rq, now
					state = stServed
					return proc.Compute{Cycles: ol.cfg.classes[rq.class].svc(r)}
				}
				sojourn := sim.Duration(now - rq.enqueued)
				if ol.cfg.adm.dropAtDequeue(now, sojourn, len(ol.queue)) {
					ol.settle(rq, outShedCodel, sojourn)
					state = stRecv
					continue
				}
				if rq.deadline > 0 && now > rq.deadline {
					ol.settle(rq, outTimeoutQueue, sojourn)
					state = stRecv
					continue
				}
				cur, svcStart = rq, now
				state = stServed
				return proc.Compute{Cycles: ol.cfg.classes[rq.class].svc(r)}
			default: // stServed: the service compute just finished
				rq := cur
				cur = nil
				now := t.Now
				state = stRecv
				if rq.fan != nil {
					ol.subServed(rq, now)
					continue
				}
				if rq.deadline > 0 && now > rq.deadline {
					ol.settle(rq, outTimeoutServed, sim.Duration(now-rq.enqueued))
					continue
				}
				lat := sim.Duration(now - svcStart)
				if ol.cfg.endToEnd {
					lat = sim.Duration(now - rq.arrived)
				}
				ol.cfg.classes[rq.class].acc.record(lat)
				ol.settle(rq, outCompleted, lat)
				continue
			}
		}
	}
}

// settle records an attempt's outcome, schedules a client retry when
// the outcome is retryable and tries remain, and — once the pump is
// done and every chain is terminal — shuts the pool down. Safe from
// both engine and handler context.
func (ol *openLoop) settle(rq *request, outcome int, sojourn sim.Duration) {
	st := &ol.byClass[rq.class]
	switch outcome {
	case outCompleted:
		ol.completed++
		st.completed++
	case outTimeoutQueue:
		ol.timedOut++
		ol.timeoutQueue++
		st.timedOut++
	case outTimeoutServed:
		ol.timedOut++
		ol.timeoutServed++
		st.timedOut++
	case outShedAdmission:
		ol.shed++
		ol.shedAdmission++
		st.shed++
	case outShedFull:
		ol.shed++
		ol.shedFull++
		st.shed++
	case outShedCodel:
		ol.shed++
		ol.shedCodel++
		st.shed++
	case outTimeoutFanout:
		ol.timedOut++
		ol.timeoutFanout++
		st.timedOut++
	case outShedFanout:
		ol.shed++
		ol.shedFanout++
		st.shed++
	}
	cl := &ol.cfg.classes[rq.class]
	if h := ol.m.Obs(); h.Enabled() {
		// Completions go through the event path too (not a bare
		// counter bump) so an offline nestobs report can recompute
		// goodput from the stream alone; Sojourn carries the request
		// latency for completed, the queue delay otherwise.
		h.Emit(obs.Overload{
			T: ol.m.Engine().Now(), Action: outName[outcome], Class: cl.name,
			Policy: ol.cfg.adm.name(), Attempt: rq.attempt, Sojourn: sojourn,
		})
	}
	if outcome != outCompleted && ol.cfg.maxRetries > 0 && rq.attempt < ol.cfg.maxRetries {
		ol.retries++
		st.retries++
		// Exponential backoff with full jitter: mean base<<attempt,
		// drawn from the client RNG so base arrivals stay untouched.
		mean := ol.cfg.backoff << uint(rq.attempt)
		delay := ol.cliRng.Exp(mean) + 1
		if h := ol.m.Obs(); h.Enabled() {
			h.Emit(obs.Overload{
				T: ol.m.Engine().Now(), Action: "retry", Class: cl.name,
				Policy: ol.cfg.adm.name(), Attempt: rq.attempt + 1,
			})
		}
		class, attempt := rq.class, rq.attempt
		ol.freeRequest(rq)
		next := ol.newRequest(class, attempt+1)
		ol.m.Engine().PostRunAfter(delay, next)
		return
	}
	ol.freeRequest(rq)
	ol.open--
	ol.maybeShutdown()
}

// maybeShutdown delivers one sentinel per handler once no more work can
// arrive. Forced sends bypass the queue bound: sentinels must not be
// lost to a saturated queue.
func (ol *openLoop) maybeShutdown() {
	if !ol.baseDone || ol.open != 0 || ol.sentinels {
		return
	}
	ol.sentinels = true
	for i := 0; i < ol.cfg.handlers; i++ {
		ol.queue = append(ol.queue, nil)
		ol.m.InjectSend(ol.ch, true)
	}
}

// finishOn publishes the overload customs when the root task exits.
// Multi-class pools additionally publish merged request percentiles and
// SLO attainment (the per-class accumulators are quiet — see sloAccum).
func (ol *openLoop) finishOn() {
	ol.m.OnExit(func(t *proc.Task) {
		if t.Name != "server-main" {
			return
		}
		res := ol.m.Result()
		if len(ol.cfg.classes) > 1 {
			var merged metrics.LatHist
			var ok, total int64
			for i := range ol.cfg.classes {
				a := ol.cfg.classes[i].acc
				merged.Merge(&a.hist)
				ok += a.ok
				total += a.hist.Count()
			}
			if total > 0 {
				tail := merged.Tail()
				us := func(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }
				res.SetCustom("req_total", float64(total))
				res.SetCustom("req_p50_us", us(tail.P50))
				res.SetCustom("req_p95_us", us(tail.P95))
				res.SetCustom("req_p99_us", us(tail.P99))
				res.SetCustom("req_p999_us", us(tail.P999))
				res.SetCustom("slo_ok", float64(ok))
				res.SetCustom("slo_pct", 100*float64(ok)/float64(total))
			}
		}
		res.SetCustom("ovl_offered", float64(ol.offered))
		res.SetCustom("ovl_completed", float64(ol.completed))
		res.SetCustom("ovl_timeout", float64(ol.timedOut))
		res.SetCustom("ovl_shed", float64(ol.shed))
		res.SetCustom("ovl_retries", float64(ol.retries))
		res.SetCustom("queue_hwm", float64(ol.ch.HighWater))
		base := ol.offered - ol.retries
		if base > 0 {
			res.SetCustom("ovl_amp", float64(ol.offered)/float64(base))
		}
		if secs := ol.m.Engine().Now().Seconds(); secs > 0 {
			res.SetCustom("ovl_goodput", float64(ol.completed)/secs)
		}
		if ol.cfg.fan != nil {
			res.SetCustom("fan_issued", float64(ol.fanIssued))
			res.SetCustom("fan_done", float64(ol.fanDone))
			res.SetCustom("fan_cancelled", float64(ol.fanCancelled))
			res.SetCustom("fan_timeout", float64(ol.fanTimeout))
			res.SetCustom("fan_shed", float64(ol.fanShed))
			res.SetCustom("fan_hedges", float64(ol.fanHedges))
			res.SetCustom("fan_hedge_wins", float64(ol.fanHedgeWins))
			if ol.fanStages > 0 {
				res.SetCustom("fan_straggle_us",
					float64(ol.fanStraggleSum)/float64(ol.fanStages)/float64(sim.Microsecond))
			}
		}
	})
}
