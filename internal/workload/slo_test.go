package workload

import (
	"testing"

	"repro/internal/cfs"
	"repro/internal/cpu"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/proc"
	"repro/internal/sim"
)

// obsRun runs a named workload with an enabled obs hub and returns the
// result plus the counter snapshot.
func obsRun(t *testing.T, name string, scale float64) (*metrics.Result, map[string]int64) {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	hub := obs.New()
	m := cpu.New(cpu.Config{
		Spec: machine.IntelXeon6130(2), Gov: governor.Schedutil{},
		Policy: cfs.Default(), Seed: 7, Obs: hub,
	})
	w.Install(m, scale)
	res := m.Run(0)
	return res, hub.Snapshot()
}

// TestSLOCountersConserve checks per-class accounting: slo.<class>.ok
// plus slo.<class>.miss must equal the requests the run recorded, for a
// closed-loop profile, an open-loop profile and the multi-class
// overload pool.
func TestSLOCountersConserve(t *testing.T) {
	cases := []struct {
		name    string
		classes []string
	}{
		{"server/redis", []string{"kv"}},             // closed loop
		{"server/apache-siege-250", []string{"web"}}, // open loop
		{OverloadMixName(1, "none"), []string{"web", "kv", "script"}},
	}
	for _, c := range cases {
		res, snap := obsRun(t, c.name, 0.05)
		var okMiss int64
		for _, class := range c.classes {
			ok, miss := snap["slo."+class+".ok"], snap["slo."+class+".miss"]
			if ok+miss == 0 {
				t.Errorf("%s: class %s recorded no requests", c.name, class)
			}
			okMiss += ok + miss
		}
		if total := int64(res.Custom["req_total"]); okMiss != total {
			t.Errorf("%s: slo ok+miss = %d, req_total = %d", c.name, okMiss, total)
		}
		if okSum := int64(res.Custom["slo_ok"]); okSum > okMiss {
			t.Errorf("%s: slo_ok %d exceeds recorded requests %d", c.name, okSum, okMiss)
		}
	}
}

// TestSLOAttainmentFixture hand-computes attainment: an accumulator
// with a 5ms target fed nine known latencies must report exactly the
// fixture's ok count and percentage.
func TestSLOAttainmentFixture(t *testing.T) {
	m := cpu.New(cpu.Config{Spec: machine.IntelXeon6130(2), Gov: governor.Schedutil{}, Policy: cfs.Default(), Seed: 1})
	acc := &sloAccum{class: "web", slo: 5 * msec}
	for ms := 1; ms <= 9; ms++ {
		acc.record(sim.Duration(ms) * msec) // 1..5 meet the target, 6..9 miss
	}
	acc.finishOn(m, "server-main")
	m.Spawn("server-main", proc.Script(proc.Compute{Cycles: 1000}))
	res := m.Run(0)
	if got := res.Custom["req_total"]; got != 9 {
		t.Errorf("req_total = %g, want 9", got)
	}
	if got := res.Custom["slo_ok"]; got != 5 {
		t.Errorf("slo_ok = %g, want 5", got)
	}
	if got, want := res.Custom["slo_pct"], 100*5.0/9.0; got != want {
		t.Errorf("slo_pct = %g, want %g", got, want)
	}
}

// TestSLOOpenAndClosedLoopAgree runs the same serving shape in both
// loop modes well below saturation: attainment must be high (and the
// recorded request count exact) either way, since an unloaded pool
// meets a 4x-mean target regardless of how requests are fed.
func TestSLOOpenAndClosedLoopAgree(t *testing.T) {
	prof := serverProfile{
		Handlers: 16, Requests: 20000,
		Service: 800 * sim.Microsecond, CV: 0.3,
		Class: "web", SLO: 4 * msec,
	}
	run := func(open bool) *metrics.Result {
		p := prof
		p.OpenLoop = open
		p.ArrivalFactor = 0.5
		m := cpu.New(cpu.Config{Spec: machine.IntelXeon6130(2), Gov: governor.Schedutil{}, Policy: cfs.Default(), Seed: 7})
		p.install(m, 0.05)
		res := m.Run(0)
		if res.Custom["truncated"] != 0 {
			t.Fatal("run truncated")
		}
		return res
	}
	closed, open := run(false), run(true)
	want := float64(scaleCount(prof.Requests, 0.05, 50))
	if closed.Custom["req_total"] != want {
		t.Errorf("closed loop recorded %g requests, want %g", closed.Custom["req_total"], want)
	}
	if open.Custom["req_total"] != want {
		t.Errorf("open loop recorded %g requests, want %g", open.Custom["req_total"], want)
	}
	for _, r := range []*metrics.Result{closed, open} {
		if pct := r.Custom["slo_pct"]; pct < 95 {
			t.Errorf("unloaded pool attainment %g%% below 95%%", pct)
		}
	}
	if c, o := closed.Custom["slo_pct"], open.Custom["slo_pct"]; c-o > 10 || o-c > 10 {
		t.Errorf("loop modes disagree on attainment: closed %g%%, open %g%%", c, o)
	}
}

// TestClosedLoopRemainderDistribution is the request-count fix: when the
// pool size does not divide the scaled request count, the remainder
// spreads over the first handlers and the total served stays exact.
func TestClosedLoopRemainderDistribution(t *testing.T) {
	for _, c := range []struct {
		handlers, requests int
		scale              float64
	}{
		{7, 20000, 0.05},  // 1000 = 7*142 + 6
		{96, 60000, 0.05}, // 3000 = 96*31 + 24
		{16, 16000, 0.05}, // 800 divides evenly
		{64, 1000, 0.05},  // 50 requests, fewer than handlers
	} {
		prof := serverProfile{
			Handlers: c.handlers, Requests: c.requests,
			Service: 500 * sim.Microsecond, CV: 0.2,
			Class: "web", SLO: 10 * msec,
		}
		m := cpu.New(cpu.Config{Spec: machine.IntelXeon6130(2), Gov: governor.Schedutil{}, Policy: cfs.Default(), Seed: 3})
		prof.install(m, c.scale)
		res := m.Run(0)
		want := float64(scaleCount(c.requests, c.scale, 50))
		if got := res.Custom["req_total"]; got != want {
			t.Errorf("handlers=%d requests=%d: served %g, want %g", c.handlers, c.requests, got, want)
		}
	}
}
