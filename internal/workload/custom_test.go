package workload

import (
	"strings"
	"testing"

	"repro/internal/cfs"
	"repro/internal/cpu"
	"repro/internal/governor"
	"repro/internal/machine"
)

const customJSON = `{
  "name": "mytest",
  "groups": [
    {"name": "worker", "count": 8, "iterations": 40,
     "compute_us": 1500, "compute_cv": 0.5,
     "sleep_us": 3000, "sleep_cv": 1.2, "scale_sleep": true},
    {"name": "dispatcher", "iterations": 30,
     "compute_us": 800, "fork_children": 4},
    {"name": "omp", "count": 6, "iterations": 20,
     "compute_us": 2000, "barrier": "b1", "active_wait": true}
  ]
}`

func runCustom(t *testing.T, js string, scale float64) *cpu.Machine {
	t.Helper()
	w, err := LoadCustom(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	spec := machine.IntelXeon5218()
	m := cpu.New(cpu.Config{Spec: spec, Gov: governor.Schedutil{}, Policy: cfs.Default(), Seed: 4})
	w.Install(m, scale)
	m.Run(0)
	return m
}

func TestCustomWorkloadRuns(t *testing.T) {
	m := runCustom(t, customJSON, 0.5)
	res := m.Result()
	if res.Custom["truncated"] != 0 {
		t.Fatal("custom workload deadlocked")
	}
	// dispatcher forks 4 children × iterations; workers and omp tasks
	// were forked by main: plenty of forks expected.
	if res.Counters.Forks < 50 {
		t.Fatalf("forks = %d", res.Counters.Forks)
	}
	if res.Counters.SpinTicksTotal == 0 {
		t.Log("note: no active-wait spin ticks observed (short run)")
	}
}

func TestCustomValidation(t *testing.T) {
	bad := []string{
		`{"groups":[{"name":"x","compute_us":1}]}`,                         // no name
		`{"name":"x","groups":[]}`,                                         // no groups
		`{"name":"x","groups":[{"name":"g"}]}`,                             // no compute
		`{"name":"x","groups":[{"name":"g","compute_us":-1}]}`,             // negative
		`{"name":"x","groups":[{"name":"g","compute_us":1,"count":-2}]}`,   // negative count
		`{"name":"x","groups":[{"name":"g","compute_us":1,"bogus":true}]}`, // unknown field
		`{"name":"x","groups":[{"name":"g","compute_us":1,"barrier":"b","fork_children":2}]}`,
	}
	for _, js := range bad {
		if _, err := LoadCustom(strings.NewReader(js)); err == nil {
			t.Errorf("accepted invalid spec: %s", js)
		}
	}
}

func TestCustomBarrierAcrossGroups(t *testing.T) {
	js := `{
	  "name": "xgroups",
	  "groups": [
	    {"name": "a", "count": 3, "iterations": 10, "compute_us": 500, "barrier": "shared"},
	    {"name": "b", "count": 2, "iterations": 10, "compute_us": 900, "barrier": "shared"}
	  ]
	}`
	m := runCustom(t, js, 1)
	if m.Result().Custom["truncated"] != 0 {
		t.Fatal("cross-group barrier deadlocked (parties miscounted)")
	}
}

func TestRegisterCustom(t *testing.T) {
	js := `{"name":"registered-once","groups":[{"name":"g","compute_us":100,"iterations":5}]}`
	w, err := RegisterCustom(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ByName(w.Name)
	if err != nil || got != w {
		t.Fatalf("registered workload not resolvable: %v", err)
	}
	if _, err := RegisterCustom(strings.NewReader(js)); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestCustomSoloComputeNoSleep(t *testing.T) {
	// A pure compute group (no sleeps, no barrier) must terminate.
	js := `{"name":"solo","groups":[{"name":"g","count":2,"iterations":8,"compute_us":2000}]}`
	m := runCustom(t, js, 1)
	if m.Result().Custom["truncated"] != 0 {
		t.Fatal("solo compute group did not terminate")
	}
}
