package workload

import (
	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/sim"
)

// sloAccum collects per-request service latencies for one server run: a
// log-bucketed histogram plus SLO-attainment counters. Requests are
// timed from the moment the handler issues the service computation to
// the moment it completes, so queueing behind a preempted core, a cold
// placement or a slow frequency ramp all count against the target while
// the workload's own modelled I/O pauses do not. Recording only reads
// the task clock — it never changes simulation behavior.
type sloAccum struct {
	class string
	slo   sim.Duration
	hist  metrics.LatHist
	ok    int64
	// quiet suppresses the run-level customs (req_*, slo_ok, slo_pct):
	// multi-class pools set it on every per-class accumulator and
	// publish merged aggregates themselves, so classes don't clobber
	// each other's customs. The per-class counters always publish.
	quiet bool
}

func (a *sloAccum) record(d sim.Duration) {
	a.hist.Add(d)
	if a.slo <= 0 || d <= a.slo {
		a.ok++
	}
}

// finishOn installs the end-of-run hook: when the named root task exits,
// the accumulated request percentiles and SLO attainment are published
// as result customs and, when observability is on, as per-class
// counters.
func (a *sloAccum) finishOn(m *cpu.Machine, rootName string) {
	m.OnExit(func(t *proc.Task) {
		if t.Name != rootName || a.hist.Count() == 0 {
			return
		}
		if !a.quiet {
			res := m.Result()
			tail := a.hist.Tail()
			us := func(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }
			res.SetCustom("req_total", float64(a.hist.Count()))
			res.SetCustom("req_p50_us", us(tail.P50))
			res.SetCustom("req_p95_us", us(tail.P95))
			res.SetCustom("req_p99_us", us(tail.P99))
			res.SetCustom("req_p999_us", us(tail.P999))
			if a.slo > 0 {
				res.SetCustom("slo_ok", float64(a.ok))
				res.SetCustom("slo_pct", 100*float64(a.ok)/float64(a.hist.Count()))
			}
		}
		if h := m.Obs(); h != nil {
			h.Count("slo."+a.class+".ok", a.ok)
			h.Count("slo."+a.class+".miss", a.hist.Count()-a.ok)
		}
	})
}
