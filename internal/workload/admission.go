package workload

import (
	"fmt"

	"strconv"
	"strings"

	"repro/internal/sim"
)

// admission is a pluggable overload policy at the server's request
// queue. admit is consulted at arrival time (prio 0 is the highest
// request class; larger numbers shed earlier); dropAtDequeue is
// consulted when a handler pops a request, with the request's queue
// sojourn. All state advances only on simulated time and queue lengths,
// so policies are deterministic under replay.
type admission interface {
	name() string
	admit(now sim.Time, prio, qlen int) bool
	dropAtDequeue(now sim.Time, sojourn sim.Duration, qlen int) bool
}

// ParseAdmission parses the admission-policy DSL:
//
//	none                                admit everything, never drop
//	cap:<depth>                         queue-depth cap, class-graded
//	token:rate=<rate>,burst=<n>         token bucket, class-reserved
//	codel:target=<dur>,interval=<dur>   CoDel-style sojourn shedding
//
// Rates are "<number>/s" as in the arrival DSL. The cap policy admits
// the highest class up to the full depth, the middle class up to 3/4,
// and lower classes up to 1/2 — graceful degradation sheds "script"
// before "kv" before "web". The token bucket reserves the analogous
// fractions of the burst. String renders the canonical form.
func ParseAdmission(s string) (admission, error) {
	s = strings.TrimSpace(s)
	if s == "none" {
		return admitAll{}, nil
	}
	head, rest, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("admission spec %q: missing ':' (want kind:params or none)", s)
	}
	switch head {
	case "cap":
		depth, err := strconv.Atoi(rest)
		if err != nil || depth < 1 || depth > 1<<30 {
			return nil, fmt.Errorf("cap: bad depth %q (want a positive integer)", rest)
		}
		return &capPolicy{depth: depth}, nil
	case "token":
		p := &tokenPolicy{}
		err := parseKV(rest, map[string]func(string) error{
			"rate": func(v string) (err error) { p.rate, err = parseRate(v); return },
			"burst": func(v string) error {
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 || n > 1<<30 {
					return fmt.Errorf("token: bad burst %q (want a positive integer)", v)
				}
				p.burst = float64(n)
				return nil
			},
		}, "rate", "burst")
		if err != nil {
			return nil, err
		}
		p.tokens = p.burst
		return p, nil
	case "codel":
		p := &codelPolicy{}
		err := parseKV(rest, map[string]func(string) error{
			"target":   func(v string) (err error) { p.target, err = parsePosDur(v); return },
			"interval": func(v string) (err error) { p.interval, err = parsePosDur(v); return },
		}, "target", "interval")
		if err != nil {
			return nil, err
		}
		return p, nil
	}
	return nil, fmt.Errorf("unknown admission kind %q (want none/cap/token/codel)", head)
}

// admitAll is the null policy.
type admitAll struct{}

func (admitAll) name() string                                   { return "none" }
func (admitAll) admit(sim.Time, int, int) bool                  { return true }
func (admitAll) dropAtDequeue(sim.Time, sim.Duration, int) bool { return false }

// capPolicy bounds queue depth, with lower-priority classes hitting
// their (smaller) cap first.
type capPolicy struct{ depth int }

func (p *capPolicy) name() string { return fmt.Sprintf("cap:%d", p.depth) }

// prioLimit grades a budget by class priority: full for the top class,
// 3/4 for the next, 1/2 below that.
func prioLimit(budget float64, prio int) float64 {
	switch {
	case prio <= 0:
		return budget
	case prio == 1:
		return budget * 3 / 4
	}
	return budget / 2
}

func (p *capPolicy) admit(_ sim.Time, prio, qlen int) bool {
	return float64(qlen) < prioLimit(float64(p.depth), prio)
}

func (p *capPolicy) dropAtDequeue(sim.Time, sim.Duration, int) bool { return false }

// tokenPolicy is a token bucket refilled in simulated time. Lower
// classes must leave a reserve in the bucket, so under sustained
// overload the tokens that do refill go to the top class.
type tokenPolicy struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   sim.Time
}

func (p *tokenPolicy) name() string {
	return fmt.Sprintf("token:rate=%s,burst=%d", fmtRate(p.rate), int(p.burst))
}

func (p *tokenPolicy) admit(now sim.Time, prio, _ int) bool {
	p.tokens += p.rate * sim.Duration(now-p.last).Seconds()
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	p.last = now
	// The reserve is the bucket share a class may not dip into: the top
	// class spends down to zero, lower classes stop earlier.
	reserve := p.burst - prioLimit(p.burst, prio)
	if p.tokens < reserve+1 {
		return false
	}
	p.tokens--
	return true
}

func (p *tokenPolicy) dropAtDequeue(sim.Time, sim.Duration, int) bool { return false }

// codelPolicy is CoDel-style sojourn-time shedding at dequeue, in the
// server-queue variant (adaptive queue timeout): as long as some
// dequeue within the last interval found the standing delay below
// target (or the queue empty), nothing is shed and the request deadline
// alone bounds waiting. Once every dequeue for a full interval has seen
// sojourn above target — sustained overload, the queue no longer
// drains — the policy latches into dropping and sheds every dequeued
// request whose sojourn exceeds target until the standing delay dips
// back below it. Network CoDel's one-drop-per-control-interval ramp is
// far too slow for request queues at serving rates; clamping the
// sojourn to target directly is what keeps served requests inside
// their deadline. Admission always accepts — the queue-depth bound is
// the workload's QueueDepth backstop.
type codelPolicy struct {
	target   sim.Duration
	interval sim.Duration

	lastBelow sim.Time // last dequeue that saw sojourn < target or an empty queue
	dropping  bool
}

func (p *codelPolicy) name() string {
	return fmt.Sprintf("codel:target=%s,interval=%s", fmtArrDur(p.target), fmtArrDur(p.interval))
}

func (p *codelPolicy) admit(sim.Time, int, int) bool { return true }

func (p *codelPolicy) dropAtDequeue(now sim.Time, sojourn sim.Duration, qlen int) bool {
	if sojourn < p.target || qlen == 0 {
		// Standing delay back under control: stop dropping and restart
		// the overload-detection interval.
		p.lastBelow = now
		p.dropping = false
		return false
	}
	if p.dropping {
		return true
	}
	if now-p.lastBelow > sim.Time(p.interval) {
		p.dropping = true
		return true
	}
	return false
}
