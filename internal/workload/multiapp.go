package workload

import (
	"strings"

	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/sim"
)

// multiapp models §5.6's concurrent-application experiment: zstd
// compression and libgav1 decoding run at the same time on one machine.
// The Result's Custom metrics "zstd_s" and "libgav1_s" record each
// application's own completion time, so per-application speedups can be
// compared against the single-application runs.
func installMultiApp(m *cpu.Machine, scale float64) {
	zstd := ptsProfile{Threads: 48, Burst: 450 * sim.Microsecond, Gap: 2500 * sim.Microsecond, BurstCV: 0.5, GapCV: 1.2, ScaleGap: true}
	gav := ptsProfile{Threads: 10, Burst: 1300 * sim.Microsecond, Gap: 2 * msec, BurstCV: 0.7, GapCV: 1.2, ScaleGap: true}

	zstd.installNamed(m, scale, 15, "zstd")
	gav.installNamed(m, scale, 14, "libgav1")

	m.OnExit(func(t *proc.Task) {
		switch {
		case strings.HasPrefix(t.Name, "zstd-main"):
			m.Result().SetCustom("zstd_s", t.Finished.Seconds())
		case strings.HasPrefix(t.Name, "libgav1-main"):
			m.Result().SetCustom("libgav1_s", t.Finished.Seconds())
		}
	})
}

func init() {
	register(&Workload{
		Name:         "multi/zstd+libgav1",
		Suite:        "multi",
		PaperSeconds: 15,
		Install:      installMultiApp,
	})
}
