package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/sim"
)

// javaProfile models a DaCapo application (§5.3): a main thread starts
// worker threads that alternate compute bursts with brief waits (locks,
// I/O, queue handoffs), plus optional background JIT/GC helpers. Apps
// with many threads and short bursts wake constantly and are exactly the
// "number and set of concurrent tasks varies" pattern Nest targets; apps
// with one or a few steadily computing threads are the paper's blue
// (parity) cases.
type javaProfile struct {
	// Threads is the number of worker threads.
	Threads int
	// Burst is the mean compute per burst (at nominal); Gap the mean
	// wait between bursts. Their ratio sets the effective concurrency.
	Burst sim.Duration
	Gap   sim.Duration
	// BurstCV jitters burst lengths; GapCV jitters waits. A heavy-tailed
	// gap distribution (CV >= 1) means threads regularly outsleep Nest's
	// compaction deadline, so the primary nest shrinks to the effective
	// concurrency and threads share warm cores.
	BurstCV float64
	GapCV   float64
	// Stagger is main-thread compute between thread starts.
	Stagger sim.Duration
	// Helpers adds background JIT/GC tasks that wake periodically.
	Helpers int
	// HelperPeriod / HelperWork shape the helpers.
	HelperPeriod sim.Duration
	HelperWork   sim.Duration
}

// install computes per-thread iteration counts from the app's paper
// runtime so the modelled run matches the reported length at scale 1.
func (p javaProfile) install(m *cpu.Machine, scale float64, paperSecs float64) {
	period := p.Burst + p.Gap
	iters := int(paperSecs * float64(sim.Second) / float64(period) * scale)
	if iters < 10 {
		iters = 10
	}
	work := jitterCycles(m, p.Burst, p.BurstCV)
	gap := p.Gap
	nominal := m.Spec().Nominal

	// Workers' waits are lock/queue waits on other threads, not absolute
	// time: they stretch and shrink with how fast the system is actually
	// running. Each worker scales its next wait by the wall-time ratio of
	// its last burst (1.0 = burst ran at nominal frequency with no queue
	// delay). A fixed fraction stays wall-clock (real I/O).
	const fixedWaitFrac = 0.25
	mkWorker := func() proc.Behavior {
		remaining := iters
		computing := false
		var burstStart sim.Time
		var burstIdeal sim.Duration
		return func(t *proc.Task, r *sim.Rand) proc.Action {
			if remaining <= 0 {
				return proc.Exit{}
			}
			if !computing {
				computing = true
				c := work(r)
				burstStart = t.Now
				burstIdeal = proc.TimeFor(c, nominal)
				return proc.Compute{Cycles: c}
			}
			computing = false
			remaining--
			ratio := 1.0
			if burstIdeal > 0 {
				ratio = float64(t.Now-burstStart) / float64(burstIdeal)
				if ratio < 0.4 {
					ratio = 0.4
				}
				if ratio > 3 {
					ratio = 3
				}
			}
			gcv := p.GapCV
			if gcv == 0 {
				gcv = 0.5
			}
			d := r.LogNormalDur(gap, gcv)
			d = sim.Duration(float64(d) * (fixedWaitFrac + (1-fixedWaitFrac)*ratio))
			return proc.Sleep{D: d}
		}
	}

	helperIters := int(paperSecs * float64(sim.Second) / float64(p.HelperPeriod+1) * scale)
	mkHelper := func() proc.Behavior {
		remaining := helperIters
		computing := false
		hw := jitterCycles(m, p.HelperWork, 0.4)
		return func(t *proc.Task, r *sim.Rand) proc.Action {
			if remaining <= 0 {
				return proc.Exit{}
			}
			if !computing {
				computing = true
				return proc.Compute{Cycles: hw(r)}
			}
			computing = false
			remaining--
			return proc.Sleep{D: r.LogNormalDur(p.HelperPeriod, 0.3)}
		}
	}

	stagger := nominalCycles(m, p.Stagger)
	var actions []proc.Action
	for i := 0; i < p.Threads; i++ {
		actions = append(actions, proc.Fork{Name: fmt.Sprintf("worker-%d", i), Behavior: mkWorker()})
		if stagger > 0 {
			actions = append(actions, proc.Compute{Cycles: stagger})
		}
	}
	for i := 0; i < p.Helpers && p.HelperPeriod > 0; i++ {
		actions = append(actions, proc.Fork{Name: fmt.Sprintf("helper-%d", i), Behavior: mkHelper()})
	}
	actions = append(actions, proc.WaitChildren{})
	m.Spawn("java-main", proc.Script(actions...))
}

const msec = sim.Millisecond

// dacapoApps lists the 21 DaCapo benchmarks of Figure 10 with their
// CFS-schedutil runtimes on the 64-core 6130 and shapes chosen from the
// paper's underload (u:) annotations and descriptions:
//
//   - one-or-few-task apps (the figure's blue names): one or two workers
//     computing in long bursts, only JIT/GC helpers beside them;
//   - moderately parallel, frequently blocking apps (h2, tradebeans,
//     graphchi-eval, tomcat-eval, xalan, pmd): many workers with short
//     bursts and comparable gaps — high underload, Nest's target;
//   - steadily parallel apps (sunflow, lusearch): workers with long
//     bursts and tiny gaps — saturating, parity expected.
var dacapoApps = []struct {
	name string
	secs float64 // 64-core 6130 CFS-schedutil runtime
	prof javaProfile
}{
	{"avrora", 25.50, javaProfile{Threads: 8, Burst: 600 * sim.Microsecond, Gap: 1200 * sim.Microsecond, BurstCV: 0.5, Helpers: 1, HelperPeriod: 40 * msec, HelperWork: msec}},
	{"batik-eval", 111, javaProfile{Threads: 1, Burst: 60 * msec, Gap: 2 * msec, BurstCV: 0.3, Helpers: 1, HelperPeriod: 60 * msec, HelperWork: msec}},
	{"biojava-eval", 199, javaProfile{Threads: 1, Burst: 80 * msec, Gap: 1 * msec, BurstCV: 0.3, Helpers: 1, HelperPeriod: 80 * msec, HelperWork: msec}},
	{"eclipse-eval", 207, javaProfile{Threads: 2, Burst: 30 * msec, Gap: 4 * msec, BurstCV: 0.5, Helpers: 2, HelperPeriod: 50 * msec, HelperWork: msec}},
	{"fop", 3.19, javaProfile{Threads: 1, Burst: 20 * msec, Gap: 1500 * sim.Microsecond, BurstCV: 0.5, Helpers: 2, HelperPeriod: 20 * msec, HelperWork: 2 * msec}},
	{"jme-eval", 81.35, javaProfile{Threads: 2, Burst: 16 * msec, Gap: 4 * msec, BurstCV: 0.4, Helpers: 1, HelperPeriod: 50 * msec, HelperWork: msec}},
	{"jython", 22.71, javaProfile{Threads: 1, Burst: 40 * msec, Gap: 2 * msec, BurstCV: 0.4, Helpers: 2, HelperPeriod: 40 * msec, HelperWork: msec}},
	{"kafka-eval", 59.10, javaProfile{Threads: 3, Burst: 8 * msec, Gap: 6 * msec, BurstCV: 0.5, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"luindex", 4.91, javaProfile{Threads: 2, Burst: 10 * msec, Gap: 2 * msec, BurstCV: 0.5, Helpers: 1, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"tradesoap-eval", 53.12, javaProfile{Threads: 6, Burst: 4 * msec, Gap: 4 * msec, BurstCV: 0.6, Helpers: 2, HelperPeriod: 40 * msec, HelperWork: msec}},
	{"cassandra-eval", 57.39, javaProfile{Threads: 24, Burst: 3 * msec, Gap: 5 * msec, BurstCV: 0.6, GapCV: 0.9, Helpers: 2, HelperPeriod: 40 * msec, HelperWork: msec}},
	{"graphchi-eval", 9.48, javaProfile{Threads: 48, Burst: 1000 * sim.Microsecond, Gap: 5 * msec, BurstCV: 0.7, GapCV: 1.4, Stagger: 500 * sim.Microsecond, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"h2", 41.89, javaProfile{Threads: 32, Burst: 1500 * sim.Microsecond, Gap: 8 * msec, BurstCV: 0.7, GapCV: 1.3, Stagger: 300 * sim.Microsecond, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"lusearch", 3.34, javaProfile{Threads: 64, Burst: 6 * msec, Gap: 300 * sim.Microsecond, BurstCV: 0.5, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"lusearch-fix", 3.31, javaProfile{Threads: 64, Burst: 6 * msec, Gap: 300 * sim.Microsecond, BurstCV: 0.5, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"pmd", 9.02, javaProfile{Threads: 48, Burst: 1500 * sim.Microsecond, Gap: 4 * msec, BurstCV: 0.7, GapCV: 1.1, Stagger: 300 * sim.Microsecond, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"sunflow", 7.27, javaProfile{Threads: 64, Burst: 10 * msec, Gap: 200 * sim.Microsecond, BurstCV: 0.4, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"tomcat-eval", 25.88, javaProfile{Threads: 64, Burst: 600 * sim.Microsecond, Gap: 4 * msec, BurstCV: 0.8, GapCV: 1.2, Stagger: 300 * sim.Microsecond, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"tradebeans", 60.21, javaProfile{Threads: 64, Burst: 500 * sim.Microsecond, Gap: 5 * msec, BurstCV: 0.8, GapCV: 1.5, Stagger: 300 * sim.Microsecond, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"xalan", 4.86, javaProfile{Threads: 64, Burst: 1200 * sim.Microsecond, Gap: 1500 * sim.Microsecond, BurstCV: 0.7, GapCV: 1.0, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
	{"zxing-eval", 10.71, javaProfile{Threads: 32, Burst: 2500 * sim.Microsecond, Gap: 2 * msec, BurstCV: 0.6, GapCV: 1.0, Helpers: 2, HelperPeriod: 30 * msec, HelperWork: msec}},
}

// DacapoNames lists the DaCapo app names in figure order.
func DacapoNames() []string {
	out := make([]string, len(dacapoApps))
	for i, a := range dacapoApps {
		out[i] = a.name
	}
	return out
}

func init() {
	for _, app := range dacapoApps {
		app := app
		register(&Workload{
			Name:         "dacapo/" + app.name,
			Suite:        "dacapo",
			PaperSeconds: app.secs,
			Install: func(m *cpu.Machine, scale float64) {
				app.prof.install(m, scale, app.secs)
			},
		})
	}
	if len(dacapoApps) != 21 {
		panic(fmt.Sprintf("dacapo suite has %d apps, want 21", len(dacapoApps)))
	}
}
