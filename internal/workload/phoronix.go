package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/sim"
)

// ptsProfile models a Phoronix multicore test (§5.5, Figure 13, Tables
// 4/5). Two shapes cover the suite:
//
//   - worker mode: Threads persistent workers alternating bursts and
//     gaps, optionally barrier-synchronised (OpenMP-style) — covers the
//     steady all-core tests (cpuminer, oidn, onednn RNN), the pipelines
//     (libgav1, ffmpeg) and the bounded-parallelism tests (rodinia).
//   - storm mode (Storm > 0): a dispatcher repeatedly spawns batches of
//     Storm short-lived tasks and waits for them — the zstd compression
//     shape whose very short tasks never see a warm core under
//     CFS-schedutil.
type ptsProfile struct {
	Threads int
	Burst   sim.Duration
	Gap     sim.Duration
	BurstCV float64
	GapCV   float64
	// Barrier synchronises workers each iteration.
	Barrier bool
	// ScaleGap makes waits track progress (queue/lock waits).
	ScaleGap bool
	// StartIdle makes workers sleep before their first burst (OpenMP
	// pools created long before the compute phase): forks then land on
	// one socket, which is what lets CFS stack Rodinia there.
	StartIdle sim.Duration

	// Storm mode.
	Storm     int          // batch size
	StormTask sim.Duration // short-task length
}

func (p ptsProfile) install(m *cpu.Machine, scale float64, paperSecs float64) {
	p.installNamed(m, scale, paperSecs, "pts")
}

// installNamed installs the profile with a distinguishable task-name
// prefix, so multi-application runs can attribute completions.
func (p ptsProfile) installNamed(m *cpu.Machine, scale float64, paperSecs float64, prefix string) {
	if p.Storm > 0 {
		p.installStorm(m, scale, paperSecs)
		return
	}
	p.installWorkers(m, scale, paperSecs, prefix)
}

// installStorm builds the dispatcher-plus-batches shape.
func (p ptsProfile) installStorm(m *cpu.Machine, scale float64, paperSecs float64) {
	batchSpan := p.StormTask + 300*sim.Microsecond
	batches := scaleCount(int(paperSecs*float64(sim.Second)/float64(batchSpan)), scale, 10)
	work := jitterCycles(m, p.StormTask, maxf(p.BurstCV, 0.2))

	batch := 0
	var pending []proc.Action
	m.Spawn("dispatcher", func(t *proc.Task, r *sim.Rand) proc.Action {
		for len(pending) == 0 {
			if batch >= batches {
				return proc.Exit{}
			}
			batch++
			for i := 0; i < p.Storm; i++ {
				pending = append(pending, proc.Fork{
					Name:     "blk",
					Behavior: proc.Once(proc.Compute{Cycles: work(r)}),
				})
			}
			pending = append(pending, proc.WaitChildren{})
		}
		a := pending[0]
		pending = pending[1:]
		return a
	})
}

// installWorkers builds the persistent-worker shape.
func (p ptsProfile) installWorkers(m *cpu.Machine, scale float64, paperSecs float64, prefix string) {
	period := p.Burst + p.Gap
	iters := scaleCount(int(paperSecs*float64(sim.Second)/float64(period)), scale, 10)
	work := jitterCycles(m, p.Burst, p.BurstCV)
	nominal := m.Spec().Nominal

	var bar *proc.Barrier
	if p.Barrier {
		bar = proc.NewBarrier("pts", p.Threads)
		bar.ActiveWait = true // OpenMP-style tests busy-wait at barriers
	}

	worker := func() proc.Behavior {
		remaining := iters
		computing := false
		started := p.StartIdle <= 0
		var burstStart sim.Time
		var burstIdeal sim.Duration
		return func(t *proc.Task, r *sim.Rand) proc.Action {
			if !started {
				started = true
				return proc.Sleep{D: r.LogNormalDur(p.StartIdle, 0.3)}
			}
			if remaining <= 0 {
				return proc.Exit{}
			}
			if !computing {
				computing = true
				c := work(r)
				burstStart = t.Now
				burstIdeal = proc.TimeFor(c, nominal)
				return proc.Compute{Cycles: c}
			}
			computing = false
			remaining--
			if bar != nil {
				return proc.BarrierWait{B: bar}
			}
			if p.Gap <= 0 {
				if remaining <= 0 {
					return proc.Exit{}
				}
				computing = true
				c := work(r)
				burstStart = t.Now
				burstIdeal = proc.TimeFor(c, nominal)
				return proc.Compute{Cycles: c}
			}
			d := r.LogNormalDur(p.Gap, maxf(p.GapCV, 0.3))
			if p.ScaleGap && burstIdeal > 0 {
				ratio := float64(t.Now-burstStart) / float64(burstIdeal)
				if ratio < 0.4 {
					ratio = 0.4
				}
				if ratio > 3 {
					ratio = 3
				}
				d = sim.Duration(float64(d) * (0.25 + 0.75*ratio))
			}
			return proc.Sleep{D: d}
		}
	}

	actions := make([]proc.Action, 0, p.Threads+1)
	for i := 0; i < p.Threads; i++ {
		actions = append(actions, proc.Fork{Name: fmt.Sprintf("%s-%d", prefix, i), Behavior: worker()})
	}
	actions = append(actions, proc.WaitChildren{})
	m.Spawn(prefix+"-main", proc.Script(actions...))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ptsTest couples a Figure 13 test with its Table 5 description.
type ptsTest struct {
	name string
	desc string
	secs float64
	prof ptsProfile
}

// phoronixNamed lists the 27 tests Figure 13 reports, shaped after the
// paper's per-test discussion. Thread counts of 0 mean "one per core",
// resolved at install time.
var phoronixNamed = []ptsTest{
	{"arrayfire-2", "ArrayFire 3.7 - BLAS CPU", 12, ptsProfile{Threads: 0, Burst: 4 * msec, Gap: 600 * sim.Microsecond, BurstCV: 0.4}},
	{"arrayfire-3", "ArrayFire 3.7 - Conjugate Gradient CPU", 10, ptsProfile{Threads: 16, Burst: 1200 * sim.Microsecond, Gap: 1500 * sim.Microsecond, BurstCV: 0.5, Barrier: true}},
	{"askap-5", "ASKAP 1.0 - Hogbom Clean OpenMP", 15, ptsProfile{Threads: 0, Burst: 5 * msec, Gap: 300 * sim.Microsecond, BurstCV: 0.3, Barrier: true}},
	{"cassandra-1", "Apache Cassandra 4.0 - Writes", 20, ptsProfile{Threads: 48, Burst: 1200 * sim.Microsecond, Gap: 4 * msec, BurstCV: 0.8, GapCV: 1.3, ScaleGap: true}},
	{"cpuminer-opt-6", "Cpuminer-Opt 3.15.5 - Blake-2 S", 15, ptsProfile{Threads: 0, Burst: 20 * msec, Gap: 200 * sim.Microsecond, BurstCV: 0.1}},
	{"cpuminer-opt-7", "Cpuminer-Opt 3.15.5 - Skeincoin", 15, ptsProfile{Threads: 0, Burst: 20 * msec, Gap: 200 * sim.Microsecond, BurstCV: 0.1}},
	{"cpuminer-opt-8", "Cpuminer-Opt 3.15.5 - Myriad-Groestl", 15, ptsProfile{Threads: 0, Burst: 18 * msec, Gap: 200 * sim.Microsecond, BurstCV: 0.1}},
	{"cpuminer-opt-9", "Cpuminer-Opt 3.15.5 - Triple SHA-256, Onecoin", 15, ptsProfile{Threads: 0, Burst: 22 * msec, Gap: 200 * sim.Microsecond, BurstCV: 0.1}},
	{"cpuminer-opt-11", "Cpuminer-Opt 3.15.5 - Quad SHA-256, Pyrite", 15, ptsProfile{Threads: 0, Burst: 22 * msec, Gap: 200 * sim.Microsecond, BurstCV: 0.1}},
	{"ffmpeg-1", "FFmpeg 4.0.2 - H.264 HD To NTSC DV", 12, ptsProfile{Threads: 16, Burst: 2 * msec, Gap: 1500 * sim.Microsecond, BurstCV: 0.5, GapCV: 0.8, ScaleGap: true}},
	{"graphics-magick-4", "GraphicsMagick 1.3.33 - Resizing", 14, ptsProfile{Threads: 0, Burst: 3 * msec, Gap: 800 * sim.Microsecond, BurstCV: 0.4, Barrier: true}},
	{"libavif-avifenc-1", "libavif avifenc 0.9.0 - Speed 6, Lossless", 25, ptsProfile{Threads: 12, Burst: 5 * msec, Gap: 700 * sim.Microsecond, BurstCV: 0.5, GapCV: 0.8}},
	{"libgav1-1", "libgav1 0.16.3 - Summer Nature 4K", 18, ptsProfile{Threads: 12, Burst: 1800 * sim.Microsecond, Gap: 2 * msec, BurstCV: 0.7, GapCV: 1.2, ScaleGap: true}},
	{"libgav1-2", "libgav1 0.16.3 - Summer Nature 1080p", 12, ptsProfile{Threads: 8, Burst: 1200 * sim.Microsecond, Gap: 2 * msec, BurstCV: 0.7, GapCV: 1.2, ScaleGap: true}},
	{"libgav1-3", "libgav1 0.16.3 - Chimera 1080p 10-bit", 16, ptsProfile{Threads: 10, Burst: 1500 * sim.Microsecond, Gap: 2 * msec, BurstCV: 0.7, GapCV: 1.2, ScaleGap: true}},
	{"libgav1-4", "libgav1 0.16.3 - Chimera 1080p", 14, ptsProfile{Threads: 10, Burst: 1300 * sim.Microsecond, Gap: 2 * msec, BurstCV: 0.7, GapCV: 1.2, ScaleGap: true}},
	{"oidn-1", "Intel Open Image Denoise 1.4.0 - RT.hdr_alb_nrm", 12, ptsProfile{Threads: 0, Burst: 15 * msec, Gap: 300 * sim.Microsecond, BurstCV: 0.2, Barrier: true}},
	{"oidn-2", "Intel Open Image Denoise 1.4.0 - RT.ldr_alb_nrm", 12, ptsProfile{Threads: 0, Burst: 15 * msec, Gap: 300 * sim.Microsecond, BurstCV: 0.2, Barrier: true}},
	{"oidn-3", "Intel Open Image Denoise 1.4.0 - RTLightmap.hdr", 14, ptsProfile{Threads: 0, Burst: 18 * msec, Gap: 300 * sim.Microsecond, BurstCV: 0.2, Barrier: true}},
	{"onednn-4", "oneDNN 2.1.2 - IP Shapes 3D f32", 10, ptsProfile{Threads: 4, Burst: 900 * sim.Microsecond, Gap: 1200 * sim.Microsecond, BurstCV: 0.5, GapCV: 0.9}},
	{"onednn-5", "oneDNN 2.1.2 - IP Shapes 1D f32", 10, ptsProfile{Threads: 2, Burst: 700 * sim.Microsecond, Gap: 1500 * sim.Microsecond, BurstCV: 0.5, GapCV: 0.9}},
	{"onednn-7", "oneDNN 2.1.2 - RNN Training f32", 20, ptsProfile{Threads: 0, Burst: 12 * msec, Gap: 400 * sim.Microsecond, BurstCV: 0.2, Barrier: true}},
	{"onednn-11", "oneDNN 2.1.2 - RNN Training bf16", 20, ptsProfile{Threads: 0, Burst: 12 * msec, Gap: 400 * sim.Microsecond, BurstCV: 0.2, Barrier: true}},
	{"onednn-14", "oneDNN 2.1.2 - RNN Training u8s8f32", 20, ptsProfile{Threads: 0, Burst: 12 * msec, Gap: 400 * sim.Microsecond, BurstCV: 0.2, Barrier: true}},
	{"rodinia-5", "Rodinia 3.1 - OpenMP Leukocyte", 25, ptsProfile{Threads: 36, Burst: 8 * msec, Gap: 500 * sim.Microsecond, BurstCV: 0.3, Barrier: true, StartIdle: 10 * msec}},
	// zstd -T runs a persistent worker pool; workers grab very short
	// block jobs and block on the queue between them, so under
	// CFS-schedutil every worker sits on its own, mostly idle, cold core
	// ("spreads the tasks out over all of the cores... low frequency").
	{"zstd-compression-7", "Zstd 1.5.0 - Level 8, Long Mode - Compression Speed", 15, ptsProfile{Threads: 48, Burst: 450 * sim.Microsecond, Gap: 2500 * sim.Microsecond, BurstCV: 0.5, GapCV: 1.2, ScaleGap: true}},
	{"zstd-compression-10", "Zstd 1.5.0 - Level 3, Long Mode - Compression Speed", 12, ptsProfile{Threads: 64, Burst: 350 * sim.Microsecond, Gap: 2 * msec, BurstCV: 0.5, GapCV: 1.2, ScaleGap: true}},
}

// PhoronixNamed lists the Figure 13 test names in figure order.
func PhoronixNamed() []string {
	out := make([]string, len(phoronixNamed))
	for i, t := range phoronixNamed {
		out[i] = t.name
	}
	return out
}

// PhoronixDescription returns the Table 5 description of a named test.
func PhoronixDescription(name string) string {
	for _, t := range phoronixNamed {
		if t.name == name {
			return t.desc
		}
	}
	return ""
}

// backgroundCount is the number of synthetic tests registered beyond the
// 27 named ones, bringing the population to the paper's 222 (Table 4).
const backgroundCount = 195

// PhoronixAll returns the full 222-test population for Table 4.
func PhoronixAll() []string {
	out := make([]string, 0, len(phoronixNamed)+backgroundCount)
	for _, t := range phoronixNamed {
		out = append(out, "phoronix/"+t.name)
	}
	for i := 0; i < backgroundCount; i++ {
		out = append(out, fmt.Sprintf("phoronix/bg-%03d", i))
	}
	return out
}

// backgroundProfile deterministically synthesises the i-th unnamed test.
// The mix follows the suite's character: mostly saturating parallel tests
// that no scheduler can help, plus minorities of single-task, moderately
// parallel and short-task tests.
func backgroundProfile(i int) (ptsProfile, float64) {
	r := sim.NewRand(0xb9 + uint64(i))
	secs := 6 + 14*r.Float64()
	switch {
	case i%20 == 19: // 5%: short-task storms
		return ptsProfile{Storm: 8 + r.Intn(24), StormTask: sim.Duration(300+r.Intn(900)) * sim.Microsecond}, secs
	case i%5 == 4: // 20%: one or two tasks
		return ptsProfile{Threads: 1 + r.Intn(2), Burst: sim.Duration(10+r.Intn(40)) * msec, Gap: sim.Duration(1+r.Intn(3)) * msec, BurstCV: 0.4}, secs
	case i%5 == 3: // 20%: moderately parallel, blocking
		return ptsProfile{
			Threads: 8 + r.Intn(40),
			Burst:   sim.Duration(800+r.Intn(2500)) * sim.Microsecond,
			Gap:     sim.Duration(1+r.Intn(5)) * msec,
			BurstCV: 0.6, GapCV: 0.6 + r.Float64(),
			ScaleGap: r.Intn(2) == 0,
		}, secs
	default: // 55%: saturating parallel
		return ptsProfile{
			Threads: 0,
			Burst:   sim.Duration(5+r.Intn(20)) * msec,
			Gap:     sim.Duration(200+r.Intn(600)) * sim.Microsecond,
			BurstCV: 0.2 + 0.3*r.Float64(),
			Barrier: r.Intn(3) == 0,
		}, secs
	}
}

func init() {
	for _, t := range phoronixNamed {
		t := t
		register(&Workload{
			Name:         "phoronix/" + t.name,
			Suite:        "phoronix",
			PaperSeconds: t.secs,
			Install: func(m *cpu.Machine, scale float64) {
				p := t.prof
				if p.Threads == 0 && p.Storm == 0 {
					p.Threads = m.Topo().NumCores()
				}
				p.install(m, scale, t.secs)
			},
		})
	}
	for i := 0; i < backgroundCount; i++ {
		i := i
		prof, secs := backgroundProfile(i)
		register(&Workload{
			Name:         fmt.Sprintf("phoronix/bg-%03d", i),
			Suite:        "phoronix-bg",
			PaperSeconds: secs,
			Install: func(m *cpu.Machine, scale float64) {
				p := prof
				if p.Threads == 0 && p.Storm == 0 {
					p.Threads = m.Topo().NumCores()
				}
				p.install(m, scale, secs)
			},
		})
	}
}
