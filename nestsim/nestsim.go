// Package nestsim is the public API of the Nest reproduction: build a
// simulated multicore server, pick a scheduling policy and power
// governor, install a workload, and measure what the EuroSys 2022 paper
// measures (run time, CPU energy, underload, frequency distributions,
// scheduler event counts).
//
// The minimal flow:
//
//	mach := nestsim.NewMachine(nestsim.Xeon5218, nestsim.Nest(), nestsim.Schedutil, 1)
//	mach.Spawn("worker", nestsim.Script(nestsim.Compute(mach.NominalCycles(time.Millisecond))))
//	res := mach.Run(0)
//	fmt.Println(res.Runtime, res.EnergyJ)
//
// Registered paper workloads (configure/llvm_ninja, dacapo/h2, nas/lu.C,
// phoronix/..., micro/..., server/...) run through Experiment:
//
//	res, err := nestsim.Experiment(nestsim.Config{
//	    Machine: nestsim.Xeon6130x2, Scheduler: "nest",
//	    Governor: "schedutil", Workload: "dacapo/h2",
//	})
//
// Everything is deterministic for a given seed and runs offline on the
// standard library alone.
package nestsim

import (
	"io"
	"time"

	nest "repro/internal/core"

	"repro/internal/cfs"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/smove"
	"repro/internal/workload"
)

// MachineID names one of the modelled servers.
type MachineID string

// The evaluated machines (Table 2) plus the §5.6 mono-socket boxes.
const (
	Xeon6130x2 MachineID = "6130-2"  // 2-socket 64-core Skylake
	Xeon6130x4 MachineID = "6130-4"  // 4-socket 128-core Skylake
	Xeon5218   MachineID = "5218"    // 2-socket 64-core Cascade Lake
	XeonE78870 MachineID = "e7-8870" // 4-socket 160-core Broadwell
	Xeon5220   MachineID = "5220"    // 1-socket 36-core Cascade Lake
	Ryzen4650G MachineID = "4650g"   // 1-socket 12-core Zen 2
)

// Machines lists all machine IDs.
func Machines() []MachineID {
	var out []MachineID
	for _, n := range machine.PresetNames() {
		out = append(out, MachineID(n))
	}
	return out
}

// GovernorID names a power governor.
type GovernorID string

// The evaluated governors (§2.3).
const (
	Schedutil   GovernorID = "schedutil"
	Performance GovernorID = "performance"
)

// Policy is a core-selection policy instance. Policies are stateful:
// build a fresh one per machine.
type Policy = sched.Policy

// CFS returns the Linux v5.9 CFS model (the paper's baseline).
func CFS() Policy { return cfs.Default() }

// Nest returns the paper's contribution with Table 1 parameters.
func Nest() Policy { return nest.Default() }

// NestConfig mirrors the Table 1 parameters and the ablation toggles.
type NestConfig = nest.Config

// NestWith returns Nest with modified parameters or disabled features.
func NestWith(cfg NestConfig) Policy { return nest.New(cfg) }

// DefaultNestConfig returns the Table 1 values.
func DefaultNestConfig() NestConfig { return nest.DefaultConfig() }

// Smove returns the prior-work baseline of Gouicem et al. (§2.2).
func Smove() Policy { return smove.Default() }

// PolicyByName resolves "cfs", "nest", "smove" or ablation names like
// "nest:nospin,premove=4".
func PolicyByName(name string) (Policy, error) {
	f, err := experiments.Schedulers(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// Result is one run's measurements; see the metrics package fields.
type Result = metrics.Result

// Trace captures per-tick core activity for rendering execution traces.
type Trace = metrics.Trace

// NewTrace returns a trace capturing the window [start, end) of a run.
func NewTrace(start, end time.Duration) *Trace {
	return metrics.NewTrace(sim.Time(start.Nanoseconds()), sim.Time(end.Nanoseconds()))
}

// Machine is a simulated server ready to run tasks.
type Machine struct {
	inner *cpu.Machine
	spec  *machine.Spec
}

// NewMachine builds a machine from a preset, a policy and a governor.
// It panics on an unknown machine ID (the IDs are package constants).
func NewMachine(id MachineID, policy Policy, gov GovernorID, seed uint64) *Machine {
	return NewMachineTraced(id, policy, gov, seed, nil)
}

// NewMachineTraced is NewMachine with an activity trace attached.
func NewMachineTraced(id MachineID, policy Policy, gov GovernorID, seed uint64, tr *Trace) *Machine {
	spec, err := machine.Preset(string(id))
	if err != nil {
		panic(err)
	}
	g, err := governor.ByName(string(gov))
	if err != nil {
		panic(err)
	}
	m := cpu.New(cpu.Config{Spec: spec, Gov: g, Policy: policy, Seed: seed, Trace: tr})
	return &Machine{inner: m, spec: spec}
}

// NumCores returns the machine's hardware thread count.
func (m *Machine) NumCores() int { return m.spec.Topo.NumCores() }

// NominalCycles converts wall time at the machine's nominal frequency
// into a cycle count for Compute actions.
func (m *Machine) NominalCycles(d time.Duration) int64 {
	return proc.Cycles(sim.Duration(d.Nanoseconds()), m.spec.Nominal)
}

// Spawn starts a root task running b.
func (m *Machine) Spawn(name string, b Behavior) { m.inner.Spawn(name, b) }

// Install adds a registered paper workload (see Workloads) at the given
// scale (1 = paper length).
func (m *Machine) Install(workloadName string, scale float64) error {
	w, err := workload.ByName(workloadName)
	if err != nil {
		return err
	}
	w.Install(m.inner, scale)
	return nil
}

// Run executes until all tasks exit or the virtual-time limit (0 = no
// limit) and returns the measurements.
func (m *Machine) Run(limit time.Duration) *Result {
	return m.inner.Run(sim.Time(limit.Nanoseconds()))
}

// Behavior is a task program: it yields the next action every time the
// previous one completes.
type Behavior = proc.Behavior

// Action is one step of a Behavior.
type Action = proc.Action

// Compute returns an action that executes the given cycle count.
func Compute(cycles int64) Action { return proc.Compute{Cycles: cycles} }

// Sleep returns an action that blocks for a fixed duration.
func Sleep(d time.Duration) Action { return proc.Sleep{D: sim.Duration(d.Nanoseconds())} }

// Fork returns an action that starts a child task.
func Fork(name string, b Behavior) Action { return proc.Fork{Name: name, Behavior: b} }

// WaitChildren returns an action that blocks until all children exit.
func WaitChildren() Action { return proc.WaitChildren{} }

// Script plays the given actions in order, then exits the task.
func Script(actions ...Action) Behavior { return proc.Script(actions...) }

// Workloads lists all registered paper workloads.
func Workloads() []string { return workload.Names() }

// RegisterCustomWorkload parses a JSON workload spec (see
// internal/workload.CustomSpec for the schema) and registers it; the
// returned name is addressable in Config.Workload and Machine.Install.
func RegisterCustomWorkload(r io.Reader) (string, error) {
	w, err := workload.RegisterCustom(r)
	if err != nil {
		return "", err
	}
	return w.Name, nil
}

// Config names one experiment cell for Experiment.
type Config struct {
	Machine   MachineID
	Scheduler string // "cfs", "nest", "smove", "nest:<flags>"
	Governor  GovernorID
	Workload  string
	Scale     float64 // 0 = default (≈1/25 of paper length)
	Seed      uint64
	Trace     *Trace
}

// Experiment runs one registered workload under one configuration.
func Experiment(c Config) (*Result, error) {
	return experiments.Run(experiments.RunSpec{
		Machine:   string(c.Machine),
		Scheduler: c.Scheduler,
		Governor:  string(c.Governor),
		Workload:  c.Workload,
		Scale:     c.Scale,
		Seed:      c.Seed,
		Trace:     c.Trace,
	})
}

// Speedup is the paper's normalised improvement for lower-is-better
// metrics: baseline/value − 1.
func Speedup(baseline, value float64) float64 { return metrics.Speedup(baseline, value) }
