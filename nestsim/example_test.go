package nestsim_test

import (
	"fmt"
	"strings"
	"time"

	"repro/nestsim"
)

// The minimal flow: build a machine, run a task program, read the
// measurements.
func Example() {
	m := nestsim.NewMachine(nestsim.Xeon5218, nestsim.Nest(), nestsim.Schedutil, 42)
	m.Spawn("worker", nestsim.Script(
		nestsim.Compute(m.NominalCycles(10*time.Millisecond)),
	))
	res := m.Run(time.Second)
	fmt.Println("completed:", res.Counters.Forks == 1)
	// Output: completed: true
}

// Comparing schedulers on a registered paper workload.
func ExampleExperiment() {
	run := func(sched string) float64 {
		res, err := nestsim.Experiment(nestsim.Config{
			Machine: nestsim.Xeon5218, Scheduler: sched,
			Governor: nestsim.Schedutil, Workload: "configure/gcc",
			Scale: 0.02, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		return res.Runtime.Seconds()
	}
	s := nestsim.Speedup(run("cfs"), run("nest"))
	fmt.Println("nest faster:", s > 0)
	// Output: nest faster: true
}

// Defining a workload from JSON instead of Go.
func ExampleRegisterCustomWorkload() {
	spec := `{"name":"example-app","groups":[
	  {"name":"w","count":4,"iterations":20,"compute_us":800,"sleep_us":2000}
	]}`
	name, err := nestsim.RegisterCustomWorkload(strings.NewReader(spec))
	if err != nil {
		panic(err)
	}
	fmt.Println(name)
	// Output: custom/example-app
}

// Ablating a Nest feature through the typed config.
func ExampleNestWith() {
	cfg := nestsim.DefaultNestConfig()
	cfg.DisableSpin = true
	m := nestsim.NewMachine(nestsim.Xeon6130x2, nestsim.NestWith(cfg), nestsim.Schedutil, 7)
	m.Spawn("t", nestsim.Script(nestsim.Compute(m.NominalCycles(time.Millisecond))))
	res := m.Run(time.Second)
	fmt.Println("spun:", res.Counters.SpinTicksTotal > 0)
	// Output: spun: false
}
