package nestsim_test

import (
	"testing"
	"time"

	"repro/nestsim"
)

func TestMachinesListed(t *testing.T) {
	ms := nestsim.Machines()
	if len(ms) != 6 {
		t.Fatalf("machines = %v", ms)
	}
	found := map[nestsim.MachineID]bool{}
	for _, m := range ms {
		found[m] = true
	}
	for _, want := range []nestsim.MachineID{
		nestsim.Xeon6130x2, nestsim.Xeon6130x4, nestsim.Xeon5218,
		nestsim.XeonE78870, nestsim.Xeon5220, nestsim.Ryzen4650G,
	} {
		if !found[want] {
			t.Fatalf("machine %q missing", want)
		}
	}
}

func TestBasicRun(t *testing.T) {
	m := nestsim.NewMachine(nestsim.Xeon5218, nestsim.Nest(), nestsim.Schedutil, 1)
	if m.NumCores() != 64 {
		t.Fatalf("NumCores = %d", m.NumCores())
	}
	m.Spawn("worker", nestsim.Script(
		nestsim.Compute(m.NominalCycles(5*time.Millisecond)),
		nestsim.Sleep(time.Millisecond),
		nestsim.Compute(m.NominalCycles(5*time.Millisecond)),
	))
	res := m.Run(time.Second)
	if res.Runtime <= 0 || res.EnergyJ <= 0 {
		t.Fatalf("empty result %+v", res)
	}
	if res.Custom["truncated"] != 0 {
		t.Fatal("truncated")
	}
}

func TestForkJoinViaFacade(t *testing.T) {
	m := nestsim.NewMachine(nestsim.Xeon6130x2, nestsim.CFS(), nestsim.Performance, 2)
	work := m.NominalCycles(2 * time.Millisecond)
	var actions []nestsim.Action
	for i := 0; i < 8; i++ {
		actions = append(actions, nestsim.Fork("kid", nestsim.Script(nestsim.Compute(work))))
	}
	actions = append(actions, nestsim.WaitChildren())
	m.Spawn("parent", nestsim.Script(actions...))
	res := m.Run(time.Second)
	if res.Counters.Forks != 9 {
		t.Fatalf("forks = %d", res.Counters.Forks)
	}
}

func TestInstallRegisteredWorkload(t *testing.T) {
	m := nestsim.NewMachine(nestsim.Xeon5218, nestsim.Nest(), nestsim.Schedutil, 3)
	if err := m.Install("configure/gcc", 0.01); err != nil {
		t.Fatal(err)
	}
	if err := m.Install("no/such", 0.01); err == nil {
		t.Fatal("bogus workload accepted")
	}
	res := m.Run(time.Minute)
	if res.Counters.Forks == 0 {
		t.Fatal("workload did not run")
	}
}

func TestExperimentAndSpeedup(t *testing.T) {
	base, err := nestsim.Experiment(nestsim.Config{
		Machine: nestsim.Xeon5218, Scheduler: "cfs", Governor: nestsim.Schedutil,
		Workload: "configure/gcc", Scale: 0.02, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	nest, err := nestsim.Experiment(nestsim.Config{
		Machine: nestsim.Xeon5218, Scheduler: "nest", Governor: nestsim.Schedutil,
		Workload: "configure/gcc", Scale: 0.02, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := nestsim.Speedup(base.Runtime.Seconds(), nest.Runtime.Seconds()); s <= 0 {
		t.Fatalf("nest speedup %.2f on the fork-heavy case", s)
	}
}

func TestTracedRun(t *testing.T) {
	tr := nestsim.NewTrace(0, 500*time.Millisecond)
	res, err := nestsim.Experiment(nestsim.Config{
		Machine: nestsim.Xeon5218, Scheduler: "cfs", Governor: nestsim.Schedutil,
		Workload: "configure/gcc", Scale: 0.02, Seed: 1, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) == 0 {
		t.Fatal("trace empty")
	}
	_ = res
}

func TestPolicyByName(t *testing.T) {
	for _, n := range []string{"cfs", "nest", "smove", "nest:nospin,smax=4"} {
		p, err := nestsim.PolicyByName(n)
		if err != nil || p == nil {
			t.Fatalf("PolicyByName(%q): %v", n, err)
		}
	}
	if _, err := nestsim.PolicyByName("rr"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestNestWithAblation(t *testing.T) {
	cfg := nestsim.DefaultNestConfig()
	cfg.DisableSpin = true
	m := nestsim.NewMachine(nestsim.Xeon5218, nestsim.NestWith(cfg), nestsim.Schedutil, 1)
	m.Spawn("w", nestsim.Script(
		nestsim.Compute(m.NominalCycles(2*time.Millisecond)),
		nestsim.Sleep(3*time.Millisecond),
		nestsim.Compute(m.NominalCycles(2*time.Millisecond)),
	))
	res := m.Run(time.Second)
	if res.Counters.SpinTicksTotal != 0 {
		t.Fatal("DisableSpin ignored through the facade")
	}
}

func TestWorkloadsExposed(t *testing.T) {
	ws := nestsim.Workloads()
	if len(ws) < 262 {
		t.Fatalf("only %d workloads exposed", len(ws))
	}
}
